"""Throughput benchmark harness: sim-events/sec and memory-accesses/sec.

The containment benchmarks measure *simulated* latencies; this harness
measures how fast the simulator itself runs, so that machine sizes like
the ones the related fault-containment work evaluates (hundreds of nodes,
millions of pages) stay within reach.  It runs one fixed, fully
deterministic fault-injection scenario at three machine configurations:

* every cell exports a block of page frames writable to its neighbour
  cell (the paper's group-grant policy, driven through the real
  ``FirewallManager`` grant path);
* every cell runs a coherence *traffic driver* that performs real
  line-granularity reads and ownership requests against the frames its
  neighbour granted it — each one a firewall-checked access through
  ``CoherenceController``;
* every cell samples ``remotely_writable_pages()`` on the paper's 20 ms
  cadence (the Section 4.2 measurement);
* a node of the victim cell fail-stops at a fixed simulated time, which
  drives detection, agreement, and the preemptive-discard recovery scan
  over everything granted to the victim.

Wall-clock time is split at the injection point so the recovery phase is
timed separately (``recovery_wall_ms``).  All simulated results (event
counts, access counts, discard counts) are byte-deterministic for a
given seed; only the wall-clock figures vary run to run.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional

from repro.core.hive import HiveSystem, boot_hive
from repro.hardware.errors import BusError, FirewallViolation
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS, HardwareParams
from repro.obs.profile import tier_snapshot
from repro.sim.channels import attach_channels
from repro.sim.engine import Simulator
from repro.sim.oplog import OP_MEMO, OP_REAL, OP_RETIRE, OpLog
from repro.sim.replay import ReplaySession, replay_from_env
from repro.sim.shard import ShardEngine, plan_shards, shards_from_env
from repro.sim.snapshot import SystemImage, snapshot_enabled

BENCH_SCHEMA = "hive-throughput/v1"

#: simulated counters that must match byte-for-byte between a sharded
#: run and the sequential engine (the HIVE_SHARDS determinism contract).
#: ``tiers`` covers the per-tier coherence attribution (hits, misses,
#: memo replays) and ``channels`` the intercell channel fingerprint.
SHARD_EQUIV_KEYS = (
    "events", "accesses", "driver_accesses", "discarded_pages",
    "writable_page_samples", "samples", "recovery_detected", "sim_ms",
    "tiers", "channels",
)

#: the HIVE_REPLAY determinism contract: a trace-replayed run must match
#: a live run on the same counters a sharded run must match.  (The
#: ``tiers`` comparison strips the ``replay`` section first — the hit/
#: fallback attribution is the one counter that *says* which execution
#: tier ran, exactly like ``shard`` metadata on sharded rows.)
REPLAY_EQUIV_KEYS = SHARD_EQUIV_KEYS

#: the HIVE_SNAPSHOT determinism contract: fork-then-run must match
#: fresh-boot-then-run on the same counters (boot draws no RNG; a forked
#: system is reseeded to the trial seed before it runs).
SNAPSHOT_EQUIV_KEYS = SHARD_EQUIV_KEYS


@dataclass(frozen=True)
class ThroughputConfig:
    """One machine size for the fixed scenario."""

    name: str
    num_nodes: int
    num_cells: int
    cpus_per_node: int
    #: frames each cell grants writable to its neighbour cell
    shared_frames_per_cell: int
    #: coherence accesses issued per driver wakeup
    ops_per_wakeup: int
    #: simulated pacing gap between driver wakeups
    wakeup_gap_ns: int
    inject_ms: int
    recovery_window_ms: int
    duration_ms: int
    sample_interval_ms: int = 20


CONFIGS: Dict[str, ThroughputConfig] = {
    "small": ThroughputConfig(
        name="small", num_nodes=4, num_cells=4, cpus_per_node=1,
        shared_frames_per_cell=32, ops_per_wakeup=16,
        wakeup_gap_ns=50_000, inject_ms=120, recovery_window_ms=200,
        duration_ms=400),
    "medium": ThroughputConfig(
        name="medium", num_nodes=8, num_cells=4, cpus_per_node=1,
        shared_frames_per_cell=64, ops_per_wakeup=16,
        wakeup_gap_ns=40_000, inject_ms=150, recovery_window_ms=200,
        duration_ms=500),
    "large": ThroughputConfig(
        name="large", num_nodes=16, num_cells=16, cpus_per_node=1,
        shared_frames_per_cell=128, ops_per_wakeup=16,
        wakeup_gap_ns=30_000, inject_ms=200, recovery_window_ms=250,
        duration_ms=600),
}


def _exporter(sim: Simulator, cell, client_cell: int, nframes: int,
              frames_out: List[int], ready):
    """Allocate ``nframes`` local frames and grant them writable to the
    neighbour cell through the real firewall-management policy path."""
    pfs = [cell.pfdats.alloc_frame() for _ in range(nframes)]
    for pf in pfs:
        yield from cell.firewall_mgr.grant_write(pf, client_cell)
        frames_out.append(pf.frame)
    ready.succeed(frames_out)
    return None


def _traffic(sim: Simulator, system: HiveSystem, cell_id: int, cpu: int,
             ready, cfg: ThroughputConfig, stop_ns: int, counters: dict,
             lane=None, record=None, session=None):
    """Issue real coherence reads/ownership requests against the frames
    the neighbour granted.  Stops when its cell dies or loses access.

    Under the sharded engine (``lane`` set) the driver registers itself
    as a shard chain: wakeups whose accesses are provably memo replays
    collapse into one park (``ShardedChain.credit``), and even real
    accesses park through the chain so the coordinator owns the clock.
    The sequential path (``lane is None``) is byte-for-byte the code
    that ran before sharding existed.

    ``record`` (an :class:`OpLog`, sequential runs only) captures one
    columnar row per wakeup — observation only, the access stream is
    untouched.  ``session`` (a :class:`ReplaySession`, always with a
    lane) registers the chain as a trace-guided :class:`ReplayChain`
    instead of a live sharded chain.
    """
    frames = yield ready
    machine = system.machine
    coh = machine.coherence
    line = machine.params.cache_line_size
    page = machine.params.page_size
    lines_per_page = page // line
    registry = system.registry
    # The access *sequence* is identical to the original per-access form
    # (frame index advances by one and the line offset by two per op);
    # each wakeup's ops now issue as one prepared batch.  The access
    # counter ``i`` advances by ``ops`` per wakeup and every term of the
    # pattern depends on ``i`` only through ``i mod lcm(nframes,
    # lines_per_page, 2)`` (the 2 covers the read/write parity), so the
    # whole run cycles through a short list of patterns prepared once up
    # front; an unchanged all-hit wakeup then replays from the batch
    # memo without re-walking the directory.
    nframes = len(frames)
    ops = cfg.ops_per_wakeup
    gap = cfg.wakeup_gap_ns
    access_prepared = coh.access_prepared
    timeout = sim.timeout
    # Inlined registry.is_live(cell_id): the registry's cell object for
    # an id is fixed at registration, so the per-wakeup liveness check
    # reduces to the dead-set test plus the cell's own alive flag.
    cell_obj = registry.cells[cell_id]
    dead_cells = registry._dead
    modulus = nframes * lines_per_page // gcd(nframes, lines_per_page)
    if modulus % 2:
        modulus *= 2
    period = modulus // gcd(ops, modulus)
    cycle = []
    for t in range(period):
        base = (t * ops) % modulus
        line_ids = [frames[(base + k) % nframes] * lines_per_page
                    + ((base + 2 * k) % lines_per_page)
                    for k in range(ops)]
        op_list = [(base + 2 * k) & 1 for k in range(ops)]
        cycle.append(coh.prepare_batch(line_ids, op_list))
    if session is not None:
        chain = session.register_chain(lane, coh, cell_id, cpu, cycle,
                                       gap)
    elif lane is not None:
        chain = lane.register_chain(coh, cpu, cycle, gap)
    else:
        chain = None
    node = cpu // machine.params.cpus_per_node
    peek_memo = coh.peek_memo
    j = 0
    while sim.now < stop_ns:
        if cell_id in dead_cells or not cell_obj.alive:
            return None
        if chain is not None:
            k, sleep_ns, j2 = chain.credit(j, stop_ns)
            if k:
                counters["accesses"] += ops * k
                j = j2
                yield chain.park(sleep_ns, k)
                continue
        # Kind-classify the wakeup *before* issue (the peek is pure):
        # a memo-valid batch will resolve as a pure memo replay, which
        # is exactly the class of rows the replay tier may collapse.
        peek = peek_memo(cpu, cycle[j]) if record is not None else None
        try:
            lat = access_prepared(cpu, cycle[j])
        except (BusError, FirewallViolation):
            # The granter (or this cell's own node) died: the grant was
            # revoked by preemptive discard.  The driver retires.  The
            # ops that completed before the raise still count.
            counters["accesses"] += coh.last_batch_completed
            if record is not None:
                record.append(sim.now, cell_id, node, OP_RETIRE,
                              cycle[j].lines[0],
                              coh.last_batch_completed, 0, j)
            return None
        counters["accesses"] += ops
        if chain is not None:
            # The live access may have rebuilt an all-hit memo without
            # a directory mutation; the chain's peek cache can't see
            # that through its generation key alone.
            chain.invalidate_peeks()
        if record is not None:
            record.append(sim.now, cell_id, node,
                          OP_MEMO if peek is not None else OP_REAL,
                          cycle[j].lines[0], ops, lat, j)
        j += 1
        if j == period:
            j = 0
        if chain is not None:
            yield chain.park(lat + gap, 1)
        else:
            yield timeout(lat + gap)
    return None


def _sampler(sim: Simulator, cell, interval_ns: int, stop_ns: int,
             counters: dict):
    """The Section 4.2 measurement: sample remotely-writable pages."""
    while sim.now < stop_ns:
        if not cell.alive:
            return None
        counters["samples"] += 1
        counters["writable_page_samples"] += \
            cell.firewall_mgr.remotely_writable_pages()
        yield sim.timeout(interval_ns)
    return None


def boot_bench_system(config: str, seed: int = 1995,
                      wheel: Optional[bool] = None) -> HiveSystem:
    """Boot the throughput scenario's machine (module-level so a
    :class:`repro.sim.snapshot.SystemImage` can host it)."""
    cfg = CONFIGS[config]
    params = HardwareParams(num_nodes=cfg.num_nodes,
                            cpus_per_node=cfg.cpus_per_node)
    sim = Simulator(crash_on_process_error=False, wheel=wheel)
    return boot_hive(sim, num_cells=cfg.num_cells,
                     machine_config=MachineConfig(params=params,
                                                  seed=seed))


def run_throughput(config: str, seed: int = 1995,
                   batch: Optional[bool] = None,
                   wheel: Optional[bool] = None,
                   shards: Optional[int] = None,
                   channels: Optional[bool] = None,
                   record: Optional[OpLog] = None,
                   replay: Optional[OpLog] = None,
                   inject_ms: Optional[int] = None,
                   system: Optional[HiveSystem] = None,
                   fork_wall_s: Optional[float] = None) -> dict:
    """Run the fixed scenario at one machine size; returns the result row.

    ``batch`` overrides the coherence controller's batched access path
    (None keeps the ``HIVE_BATCH`` environment default); ``wheel``
    likewise overrides the engine timer wheel (``HIVE_WHEEL``);
    ``shards`` the cell-sharded engine (``HIVE_SHARDS``, 0 = the
    sequential engine).  The simulated counters are identical either
    way — only wall clock changes.  ``channels`` forces the intercell
    channel recorder on for a sequential run (it is always attached
    under sharding), so a sequential baseline exposes the same channel
    fingerprint a sharded run is compared against.

    ``record`` captures the traffic drivers' op stream into the given
    :class:`OpLog` (sequential engine only — observation, no behavior
    change).  ``replay`` feeds a previously recorded log back through
    trace-guided chains under the shard coordinator (one lane when
    ``shards`` is 0, composing with any ``shards`` count otherwise);
    ``HIVE_REPLAY=0`` ignores the log and runs live.  ``inject_ms``
    overrides the config's fault-injection time — the fault-schedule
    sweep's axis; everything before the moved fault replays, the
    affected chains fall back to live execution at the divergence.

    ``system`` runs the scenario against an already-booted (snapshot-
    forked) system instead of booting one — its boot cost was paid by
    the image, so ``boot_wall_s`` is 0 and ``wheel`` is whatever the
    system was booted with.  ``fork_wall_s`` records the fork cost the
    caller measured for the row.
    """
    cfg = CONFIGS[config]
    if system is None:
        boot_wall0 = time.perf_counter()
        system = boot_bench_system(config, seed=seed, wheel=wheel)
        boot_wall = time.perf_counter() - boot_wall0
    else:
        # Forked / caller-booted: the image paid the boot already.
        boot_wall = 0.0
    sim = system.sim
    params = system.machine.params
    if batch is not None:
        system.machine.coherence.batch_enabled = batch
    if shards is None:
        shards = shards_from_env()
    use_replay = replay is not None and replay_from_env()
    if record is not None and (shards > 0 or use_replay):
        raise ValueError("recording requires the sequential engine "
                         "(no shards, no replay)")
    registry = system.registry
    victim = cfg.num_cells - 1
    stop_ns = cfg.duration_ms * NS_PER_MS
    if inject_ms is None:
        inject_ms = cfg.inject_ms
    inject_ns = inject_ms * NS_PER_MS
    counters = {"accesses": 0, "samples": 0, "writable_page_samples": 0}

    lookahead = params.min_intercell_latency_ns()
    engine = None
    chan = None
    session = None
    if shards > 0 or channels:
        chan = attach_channels(system.machine, registry, lookahead,
                               sim=sim)
    if shards > 0 or use_replay:
        groups = plan_shards(list(registry.cells), max(1, shards))
        engine = ShardEngine(sim, groups, lookahead, channels=chan)
    if use_replay:
        session = ReplaySession(replay, cfg.name)
        system.replay_session = session
    if record is not None:
        record.meta.update({"config": cfg.name, "seed": seed,
                            "inject_ms": inject_ms,
                            "duration_ms": cfg.duration_ms})

    for c in range(cfg.num_cells):
        cell = registry.cell_object(c)
        client = (c + 1) % cfg.num_cells
        frames: List[int] = []
        ready = sim.event(f"grants{c}")
        sim.process(_exporter(sim, cell, client, cfg.shared_frames_per_cell,
                              frames, ready), name=f"exporter{c}")
        client_cell = registry.cell_object(client)
        cpu = client_cell.cpu_ids[0]
        lane = engine.lane_of(client) if engine is not None else None
        sim.process(_traffic(sim, system, client, cpu, ready, cfg,
                             stop_ns, counters, lane=lane,
                             record=record, session=session),
                    name=f"traffic{client}")
        sim.process(_sampler(sim, cell, cfg.sample_interval_ms * NS_PER_MS,
                             stop_ns, counters), name=f"sampler{c}")

    system.injector.inject_at(inject_ns, FaultInjector.NODE_FAILURE,
                              registry.first_node_of(victim),
                              trigger="throughput-bench")

    run = engine.run if engine is not None else sim.run
    # Cyclic GC passes contribute ~8% of wall on the large config and
    # cannot affect any simulated counter; suspend collection for the
    # measured window (the cycles it would have reclaimed are collected
    # right after).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        run(until=inject_ns)
        wall_inject = time.perf_counter()
        run(until=inject_ns + cfg.recovery_window_ms * NS_PER_MS)
        wall_recovered = time.perf_counter()
        run(until=stop_ns)
        wall_end = time.perf_counter()
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()

    stats = system.machine.coherence.stats
    coh_accesses = (stats.read_hits + stats.read_misses
                    + stats.write_hits + stats.write_misses)
    records = [r for r in system.coordinator.records
               if victim in r.dead_cells]
    discarded = sum(r.discarded_pages for r in records)
    wall_s = wall_end - wall0
    events = sim.events_processed
    row = {
        "config": cfg.name,
        "nodes": cfg.num_nodes,
        "cells": cfg.num_cells,
        "cpus_per_node": cfg.cpus_per_node,
        "seed": seed,
        "sim_ms": stop_ns / NS_PER_MS,
        "boot_wall_s": round(boot_wall, 4),
        "fork_wall_s": round(fork_wall_s, 4) if fork_wall_s else 0.0,
        "wall_s": round(wall_s, 4),
        "recovery_wall_ms": round((wall_recovered - wall_inject) * 1e3, 3),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "accesses": coh_accesses,
        "accesses_per_sec": round(coh_accesses / wall_s, 1),
        "driver_accesses": counters["accesses"],
        "writable_page_samples": counters["writable_page_samples"],
        "samples": counters["samples"],
        "recovery_detected": bool(records),
        "discarded_pages": discarded,
        "shards": shards,
        "inject_ms": inject_ms,
        # Hot-path tier attribution (seed-deterministic counts; the
        # engine section is non-null only under HIVE_PROFILE=1).
        "tiers": tier_snapshot(system),
    }
    if chan is not None:
        row["channels"] = chan.snapshot()
    if engine is not None:
        row["shard"] = engine.snapshot()
    if session is not None:
        row["replay"] = session.snapshot()
    return row


#: snapshot images for the throughput scenario, one per (config, wheel).
#: Forked runs reseed to the trial seed, so the boot seed never keys the
#: cache — one image serves every seed of a config.
_BENCH_IMAGES: Dict[tuple, SystemImage] = {}


def bench_image(config: str, wheel: Optional[bool] = None) -> SystemImage:
    """The (process-local) snapshot image for one throughput config."""
    key = (config, wheel)
    image = _BENCH_IMAGES.get(key)
    if image is None or image.closed:
        image = SystemImage(boot_bench_system, config, 1995, wheel,
                            name=f"bench-{config}")
        _BENCH_IMAGES[key] = image
    return image


def _forked_throughput(system: HiveSystem, config: str,
                       kwargs: dict) -> dict:
    """Child-side bench run (module-level so it crosses the image pipe)."""
    return run_throughput(config, system=system, **kwargs)


def run_throughput_forked(config: str, seed: int = 1995,
                          batch: Optional[bool] = None,
                          wheel: Optional[bool] = None,
                          shards: Optional[int] = None,
                          channels: Optional[bool] = None,
                          replay: Optional[OpLog] = None,
                          inject_ms: Optional[int] = None) -> dict:
    """``run_throughput`` against a snapshot fork instead of a fresh boot.

    The returned row is byte-identical on every simulated counter (the
    golden contract); ``boot_wall_s`` becomes the image's one-time boot
    and ``fork_wall_s`` the per-run fork cost it amortizes down to.
    With ``HIVE_SNAPSHOT=0`` (or no ``os.fork``) this falls back to a
    fresh boot per run, with ``fork_wall_s`` recording that boot —
    i.e. no amortization, same results.
    """
    kwargs = dict(seed=seed, batch=batch, shards=shards,
                  channels=channels, replay=replay, inject_ms=inject_ms)
    if not snapshot_enabled():
        row = run_throughput(config, wheel=wheel, **kwargs)
        row["fork_wall_s"] = row["boot_wall_s"]
        row["snapshot"] = "boot"
        return row
    image = bench_image(config, wheel=wheel)
    row = image.run(_forked_throughput, config, kwargs, seed=seed)
    row["boot_wall_s"] = round(image.boot_wall_s, 4)
    row["fork_wall_s"] = round(image.fork_wall_s_last, 4)
    row["snapshot"] = "fork"
    return row


def compare_snapshot(config: str, seed: int = 1995,
                     shards: int = 0,
                     replay_log: Optional[OpLog] = None) -> dict:
    """The HIVE_SNAPSHOT equivalence gate for one config.

    Runs the scenario twice — fresh-boot-then-run and fork-then-run —
    with the channel recorder attached on both sides, and diffs every
    key in :data:`SNAPSHOT_EQUIV_KEYS`.  ``shards``/``replay_log``
    compose the comparison with the other execution tiers (both sides
    get the same setting).  Returns ``match`` plus the amortization the
    fork bought (fresh boot wall vs fork wall).
    """
    kwargs = dict(seed=seed, shards=shards, channels=True,
                  replay=replay_log)
    fresh = run_throughput(config, **kwargs)
    forked = run_throughput_forked(config, **kwargs)
    mismatches = {}
    for key in SNAPSHOT_EQUIV_KEYS:
        if fresh.get(key) != forked.get(key):
            mismatches[key] = {"fresh": fresh.get(key),
                               "forked": forked.get(key)}
    fork_wall = forked["fork_wall_s"]
    return {
        "config": config,
        "shards": shards,
        "mode": forked.get("snapshot", "boot"),
        "match": not mismatches,
        "mismatches": mismatches,
        "boot_wall_s": fresh["boot_wall_s"],
        "fork_wall_s": fork_wall,
        "amortization_x": (round(fresh["boot_wall_s"] / fork_wall, 2)
                           if fork_wall > 0 else None),
        "fresh_events_per_sec": fresh["events_per_sec"],
        "forked_events_per_sec": forked["events_per_sec"],
    }


def _strip_replay_tiers(row: dict) -> dict:
    """A row's ``tiers`` with the ``replay`` attribution removed.

    The replay section *names the execution tier* (trace hits vs
    fallbacks), so it legitimately differs between a live and a
    replayed run — like ``shard`` metadata, it is excluded from the
    byte-identical contract, which covers every simulated counter.
    """
    tiers = dict(row.get("tiers") or {})
    tiers.pop("replay", None)
    return tiers


def compare_shards(config: str, shards: int, seed: int = 1995,
                   batch: Optional[bool] = None,
                   wheel: Optional[bool] = None) -> dict:
    """The HIVE_SHARDS equivalence gate for one config.

    Runs the scenario sequentially (with the channel recorder attached,
    so the channel fingerprint exists on both sides) and sharded, and
    diffs every key in :data:`SHARD_EQUIV_KEYS`.  Returns a dict with
    ``match`` plus the per-key mismatches (empty when equivalent).
    """
    seq = run_throughput(config, seed=seed, batch=batch, wheel=wheel,
                         shards=0, channels=True)
    shd = run_throughput(config, seed=seed, batch=batch, wheel=wheel,
                         shards=shards)
    mismatches = {}
    for key in SHARD_EQUIV_KEYS:
        if seq.get(key) != shd.get(key):
            mismatches[key] = {"sequential": seq.get(key),
                               "sharded": shd.get(key)}
    return {
        "config": config,
        "shards": shards,
        "match": not mismatches,
        "mismatches": mismatches,
        "sequential_events_per_sec": seq["events_per_sec"],
        "sharded_events_per_sec": shd["events_per_sec"],
        "replayed_wakeups": shd.get("shard", {}).get("replayed_wakeups", 0),
    }


def record_traces(configs: List[str], seed: int = 1995) -> Dict[str, OpLog]:
    """One sequential recording pass per config; returns finalized logs."""
    logs: Dict[str, OpLog] = {}
    for name in configs:
        log = OpLog()
        run_throughput(name, seed=seed, record=log)
        logs[name] = log.finalize()
    return logs


def _replay_mismatches(live: dict, rep: dict) -> dict:
    """Diff a live and a replayed row over :data:`REPLAY_EQUIV_KEYS`."""
    mismatches = {}
    for key in REPLAY_EQUIV_KEYS:
        if key == "tiers":
            a, b = _strip_replay_tiers(live), _strip_replay_tiers(rep)
        else:
            a, b = live.get(key), rep.get(key)
        if a != b:
            mismatches[key] = {"live": a, "replay": b}
    return mismatches


def compare_replay(config: str, seed: int = 1995,
                   shards: int = 0) -> dict:
    """The HIVE_REPLAY equivalence gate for one config.

    Records a live run (channel recorder attached so the fingerprint
    exists on both sides), replays the trace — optionally composed with
    ``shards`` lanes — and diffs every key in
    :data:`REPLAY_EQUIV_KEYS`.  The recording run doubles as the live
    baseline: capture is observation-only (a pure memo peek plus list
    appends), which the replay-vs-live goldens verify rather than
    assume.
    """
    log = OpLog()
    live = run_throughput(config, seed=seed, channels=True, record=log)
    log.finalize()
    rep = run_throughput(config, seed=seed, channels=True, replay=log,
                         shards=shards)
    mismatches = _replay_mismatches(live, rep)
    replay_stats = rep.get("replay", {})
    return {
        "config": config,
        "shards": shards,
        "match": not mismatches,
        "mismatches": mismatches,
        "live_events_per_sec": live["events_per_sec"],
        "replay_events_per_sec": rep["events_per_sec"],
        "replayed_from_trace": replay_stats.get("replayed_from_trace", 0),
        "fallback_wakeups": replay_stats.get("fallback_wakeups", 0),
        "trace_rows": len(log),
    }


def sweep_inject_times(config: str, trials: int) -> List[int]:
    """The fault-schedule sweep axis: ``trials`` injection times spread
    deterministically across the run (none equal to the recorded
    default, so every sweep trial exercises the divergence path)."""
    cfg = CONFIGS[config]
    lo = max(1, cfg.inject_ms // 2)
    hi = max(lo + 1, cfg.duration_ms - cfg.recovery_window_ms)
    times = []
    for i in range(1, trials + 1):
        t = lo + (i * (hi - lo)) // (trials + 1)
        if t == cfg.inject_ms:
            t += 1
        times.append(t)
    return times


def run_replay_sweep(config: str, trials: int = 4, seed: int = 1995,
                     shards: int = 0, repeats: int = 1) -> dict:
    """A same-traffic fault-schedule sweep: record once, replay many.

    Trial 0 runs live at the config's default injection time and
    records the op trace.  Every sweep trial then moves the fault and
    runs **twice** — live and trace-replayed — so the sweep both
    measures the replay speedup and *gates* it: the two sides' counters
    must match byte-for-byte at every moved fault time (the recorded
    segments before/after the divergence replay, the affected chains
    fall back to live execution).  Wall-clock rows keep the bench's
    best-of-``repeats`` convention.
    """
    def best_of(fn):
        best = None
        for _ in range(max(1, repeats)):
            row = fn()
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        return best

    log = OpLog()
    recorded = run_throughput(config, seed=seed, channels=True,
                              record=log)
    log.finalize()
    rows = []
    all_match = True
    for inject in sweep_inject_times(config, trials):
        live = best_of(lambda: run_throughput(
            config, seed=seed, channels=True, inject_ms=inject))
        rep = best_of(lambda: run_throughput(
            config, seed=seed, channels=True, replay=log,
            shards=shards, inject_ms=inject))
        mismatches = _replay_mismatches(live, rep)
        if mismatches:
            all_match = False
        replay_stats = rep.get("replay", {})
        rows.append({
            "inject_ms": inject,
            "counters_match": not mismatches,
            "mismatches": mismatches,
            "live_events_per_sec": live["events_per_sec"],
            "replay_events_per_sec": rep["events_per_sec"],
            "speedup": round(rep["events_per_sec"]
                             / live["events_per_sec"], 2),
            "replayed_from_trace": replay_stats.get(
                "replayed_from_trace", 0),
            "fallback_wakeups": replay_stats.get("fallback_wakeups", 0),
            "desyncs": replay_stats.get("desyncs", 0),
            "events": rep["events"],
        })
    live_mean = sum(r["live_events_per_sec"] for r in rows) / len(rows)
    rep_mean = sum(r["replay_events_per_sec"] for r in rows) / len(rows)
    return {
        "config": config,
        "seed": seed,
        "shards": shards,
        "trials": trials,
        "repeats": max(1, repeats),
        "trace_rows": len(log),
        "recorded_events_per_sec": recorded["events_per_sec"],
        "rows": rows,
        "live_events_per_sec_mean": round(live_mean, 1),
        "replay_events_per_sec_mean": round(rep_mean, 1),
        "speedup_mean": round(rep_mean / live_mean, 2),
        "counters_match": all_match,
    }


def run_suite(configs: Optional[List[str]] = None,
              seed: int = 1995, repeats: int = 1,
              batch: Optional[bool] = None,
              wheel: Optional[bool] = None,
              shards: Optional[int] = None,
              replay_logs: Optional[Dict[str, OpLog]] = None,
              snapshot: bool = False) -> dict:
    """Run the scenario at the requested sizes; returns the bench payload.

    With ``repeats > 1`` each config runs that many times and the
    fastest run is kept as the headline row (timeit-style best-of:
    external load only ever slows a run down, so the minimum wall time
    is the least noisy estimate) — but the per-repeat wall-clock spread
    is surfaced too (``wall_s_min``/``wall_s_max``/``wall_s_mean``), so
    a regression can't hide behind one lucky repeat.  All simulated
    counters are seed-deterministic and identical across repeats (this
    is verified, not assumed); only the wall-clock figures differ.

    ``replay_logs`` (per-config :class:`OpLog`, from ``repro bench
    --record``) runs each config as a trace replay instead of live.
    ``snapshot`` boots each config once into a snapshot image and forks
    every repeat from it (``fork_wall_s`` replaces the per-repeat boot).
    """
    names = list(configs) if configs else list(CONFIGS)
    results = {}
    for name in names:
        best = None
        walls: List[float] = []
        for _ in range(max(1, repeats)):
            runner = run_throughput_forked if snapshot else run_throughput
            row = runner(name, seed=seed, batch=batch, wheel=wheel,
                         shards=shards,
                         replay=(replay_logs or {}).get(name))
            walls.append(row["wall_s"])
            if best is None:
                best = row
            else:
                for key in ("events", "accesses", "driver_accesses",
                            "discarded_pages", "writable_page_samples"):
                    if row[key] != best[key]:
                        raise RuntimeError(
                            f"non-deterministic repeat for {name!r}: "
                            f"{key} {row[key]} != {best[key]}")
                if row["wall_s"] < best["wall_s"]:
                    best = row
        best["repeats"] = max(1, repeats)
        best["wall_s_min"] = round(min(walls), 4)
        best["wall_s_max"] = round(max(walls), 4)
        best["wall_s_mean"] = round(sum(walls) / len(walls), 4)
        results[name] = best
    return {"schema": BENCH_SCHEMA, "seed": seed, "results": results}


def _calibration_workload() -> int:
    """Fixed pure-Python work resembling the simulator hot paths
    (dict stores/loads plus integer arithmetic in a tight loop)."""
    d = {i: i for i in range(1024)}
    acc = 0
    for i in range(200_000):
        d[i & 1023] = i
        acc += d[(i * 7) & 1023]
    return acc


def machine_calibration(repeats: int = 10) -> dict:
    """Host-speed anchor stamped into every bench file.

    Committed ``BENCH_pr<N>.json`` files come from whichever machine ran
    that PR, so a raw events/s ratio between two files conflates code
    speed with host speed.  The score is the best-of-``repeats`` rate of
    a fixed pure-Python workload; dividing a file's events/s by its own
    score cancels the host term, which is what lets ``repro report
    --check`` gate on cross-PR regressions between different machines.
    Best-of matches the bench's own best-of-N wall-clock convention:
    both numerator and denominator are peak rates, so transient
    scheduler steal drops out of the ratio.  Residual host noise on a
    shared box is ~10%, well inside the 30% gate threshold.
    """
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        _calibration_workload()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"score": round(200_000 / best, 1),
            "workload": "dict-loop-200k",
            "repeats": max(1, repeats)}


def write_bench_file(path: str, payload: dict) -> None:
    payload.setdefault("calibration", machine_calibration())
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_file(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    validate_payload(payload)
    return payload


def validate_payload(payload: dict) -> None:
    """Schema check used by the CI bench-smoke job."""
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bad schema: {payload.get('schema')!r}")
    results = payload.get("results")
    if not isinstance(results, dict) or not results:
        raise ValueError("results missing or empty")
    for name, row in results.items():
        for key in ("config", "events_per_sec", "accesses_per_sec",
                    "recovery_wall_ms", "events", "accesses"):
            if key not in row:
                raise ValueError(f"result {name!r} missing {key!r}")
        if row["events"] <= 0 or row["accesses"] <= 0:
            raise ValueError(f"result {name!r} has empty counters")
