"""The Table 7.4 fault-injection experiments, end to end.

Per trial, following Section 7.4's method:

1. boot a four-processor four-cell Hive (with the agreement *oracle*, as
   the paper's experiments used);
2. start the main workload (pmake for multiprogrammed tests, raytrace for
   parallel-application tests);
3. inject the fault — a fail-stop node failure (immediately, at a phase
   trigger such as process creation or the copy-on-write search, or at a
   pseudo-random time), or kernel-pointer corruption in a process address
   map or a COW tree;
4. measure the latency until the last surviving cell enters recovery;
5. let the main workload run out, then run a pmake *correctness check*
   that forks processes on all surviving cells;
6. compare every output file written by both runs against its reference
   pattern.

A trial counts as *contained* when every surviving cell is still alive,
the correctness check completes, and no output file is corrupt.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.hive import HiveSystem, boot_hive
from repro.core.kfaults import ALL_MODES, KernelFaultInjector
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS, HardwareParams
from repro.sim.engine import Simulator
from repro.sim.snapshot import SystemImage
from repro.workloads.base import Platform
from repro.workloads.pmake import PmakeWorkload
from repro.workloads.raytrace import RaytraceWorkload

#: cell the faults are injected into (a cell that serves no file system
#: in the default mounts, as the paper's surviving-system check requires
#: the file servers to outlive the fault).
DEFAULT_VICTIM = 3

HW_DURING_PROCESS_CREATION = "hw_process_creation"
HW_DURING_COW_SEARCH = "hw_cow_search"
HW_RANDOM_TIME = "hw_random"
SW_ADDRESS_MAP = "sw_address_map"
SW_COW_TREE = "sw_cow_tree"

ALL_SCENARIOS = (HW_DURING_PROCESS_CREATION, HW_DURING_COW_SEARCH,
                 HW_RANDOM_TIME, SW_ADDRESS_MAP, SW_COW_TREE)

#: paper values: (workload, #tests, avg ms, max ms)
PAPER_TABLE_7_4 = {
    HW_DURING_PROCESS_CREATION: ("pmake", 20, 16, 21),
    HW_DURING_COW_SEARCH: ("raytrace", 9, 10, 11),
    HW_RANDOM_TIME: ("pmake", 20, 21, 45),
    SW_ADDRESS_MAP: ("pmake", 8, 38, 65),
    SW_COW_TREE: ("raytrace", 12, 401, 760),
}


def boot_faultexp_system(agreement: str = "oracle",
                         seed: int = 0) -> HiveSystem:
    """Boot the standard Table 7.4 system (module-level, image-bootable).

    This is the exact boot :meth:`FaultExperimentRunner._boot` performs;
    keeping it module-level lets a :class:`SystemImage` host it in a
    holder process and fork trial copies from it.
    """
    sim = Simulator()
    system = boot_hive(
        sim, num_cells=4,
        machine_config=MachineConfig(params=HardwareParams(), seed=seed),
        agreement=agreement)
    system.namespace.mount("/tmp", 1)
    system.namespace.mount("/usr", 2)
    system.namespace.mount("/results", 0)
    system.namespace.mount("/check", 0)
    return system


def _forked_trial(system: HiveSystem, scenario: str, seed: int,
                  fault_seed: Optional[int], agreement: str,
                  victim_cell: int, wild_writes: int,
                  on_boot) -> FaultTrialResult:
    """Child-side trial body for image-forked runs (module-level so it
    pickles by reference across the image's request pipe).

    The image already reseeded the forked system; ``on_boot`` runs here,
    in the child, so observer/tracer attachment does not silently depend
    on a fresh boot.
    """
    if on_boot is not None:
        on_boot(system)
    runner = FaultExperimentRunner(
        agreement=agreement, victim_cell=victim_cell,
        wild_writes=wild_writes)
    return runner.run_trial_on(system, scenario, seed, fault_seed)


@dataclass
class FaultTrialResult:
    scenario: str
    seed: int
    injected_at_ns: int
    detected: bool
    #: latency until the last cell entered recovery (ns); None if the
    #: fault was never detected
    last_entry_latency_ns: Optional[int]
    contained: bool
    survivors_alive: bool
    outputs_ok: bool
    check_ok: bool
    #: duration of the recovery round itself (entry to barrier-2 exit);
    #: the paper measured 40-80 ms
    recovery_duration_ns: Optional[int] = None
    notes: str = ""
    #: the seed that drove fault arming when it differs from ``seed``
    #: (replay campaigns fix the workload seed and sweep only this).
    fault_seed: Optional[int] = None

    @property
    def latency_ms(self) -> Optional[float]:
        if self.last_entry_latency_ns is None:
            return None
        return self.last_entry_latency_ns / 1e6

    def to_dict(self) -> dict:
        """JSON-safe form for cross-process campaign shards."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultTrialResult":
        return cls(**payload)


@dataclass
class ScenarioSummary:
    scenario: str
    trials: List[FaultTrialResult] = field(default_factory=list)

    @property
    def contained_count(self) -> int:
        return sum(1 for t in self.trials if t.contained)

    @property
    def latencies_ms(self) -> List[float]:
        return [t.latency_ms for t in self.trials
                if t.latency_ms is not None]

    @property
    def avg_latency_ms(self) -> float:
        vals = self.latencies_ms
        return statistics.mean(vals) if vals else float("nan")

    @property
    def max_latency_ms(self) -> float:
        vals = self.latencies_ms
        return max(vals) if vals else float("nan")


class FaultExperimentRunner:
    """Runs fault-injection trials and summarizes them."""

    def __init__(self, agreement: str = "oracle",
                 victim_cell: int = DEFAULT_VICTIM,
                 wild_writes: int = 0, on_boot=None,
                 image: Optional[SystemImage] = None):
        self.agreement = agreement
        self.victim_cell = victim_cell
        self.wild_writes = wild_writes
        #: called with each booted HiveSystem before the trial starts —
        #: the hook telemetry uses to attach a flight recorder.  With an
        #: image attached it runs inside the forked child (and must
        #: therefore be a module-level callable, not a closure).
        self.on_boot = on_boot
        #: when set, trials fork from this snapshot image instead of
        #: paying a fresh boot; see :meth:`make_image`.
        self.image = image
        #: wall-clock cost of the most recent trial's system setup
        #: (fresh boot, or fork from the image).
        self.last_setup_wall_s = 0.0

    # -- system assembly -------------------------------------------------

    def _boot(self, seed: int) -> HiveSystem:
        return boot_faultexp_system(self.agreement, seed)

    def make_image(self, boot_seed: int = 0) -> SystemImage:
        """Create (and attach) a snapshot image for this runner's config.

        The boot seed is irrelevant to the golden contract — boot draws
        no RNG — because every forked trial is reseeded to its own seed.
        """
        image = SystemImage(boot_faultexp_system, self.agreement, boot_seed,
                            name=f"faultexp-{self.agreement}")
        self.image = image
        return image

    # -- one trial ------------------------------------------------------------

    def run_trial(self, scenario: str, seed: int = 0,
                  fault_seed: Optional[int] = None) -> FaultTrialResult:
        """One Table 7.4 trial.

        ``seed`` drives everything deterministic about the run — boot,
        workload traffic, and (by default) the fault schedule.
        ``fault_seed`` decouples the fault schedule from the traffic:
        a replay campaign records trial 0 once and sweeps only the
        fault arming across trials, so two trials with equal ``seed``
        and different ``fault_seed`` execute identical op streams up
        to the injection point.
        """
        if scenario not in ALL_SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}")
        if self.image is not None:
            result = self.image.run(
                _forked_trial, scenario, seed, fault_seed, self.agreement,
                self.victim_cell, self.wild_writes, self.on_boot, seed=seed)
            self.last_setup_wall_s = self.image.fork_wall_s_last
            return result
        t0 = time.perf_counter()
        system = self._boot(seed)
        self.last_setup_wall_s = time.perf_counter() - t0
        if self.on_boot is not None:
            self.on_boot(system)
        return self.run_trial_on(system, scenario, seed, fault_seed)

    def run_trial_on(self, system: HiveSystem, scenario: str, seed: int = 0,
                     fault_seed: Optional[int] = None) -> FaultTrialResult:
        """Run one trial against an already-booted (or forked) system."""
        fseed = seed if fault_seed is None else fault_seed
        sim = system.sim
        platform = Platform(system)
        workload_name = PAPER_TABLE_7_4[scenario][0]
        if workload_name == "pmake":
            workload = PmakeWorkload()
        else:
            workload = RaytraceWorkload()

        injected = {"t": None}

        def note_injection(record) -> None:
            injected["t"] = record.time_ns

        system.injector.observers.append(note_injection)

        kfi = KernelFaultInjector(system, seed=fseed + 101)

        # Arm / schedule the fault.
        if scenario == HW_DURING_PROCESS_CREATION:
            # Skip a few occurrences so the fault lands mid-run, not on
            # the very first fork.
            for _ in range(2 + fseed % 4):
                system.injector.arm_phase("process_creation",
                                          "noop", self.victim_cell)
            system.injector.arm_phase("process_creation",
                                      FaultInjector.NODE_FAILURE,
                                      self.victim_cell)
        elif scenario == HW_DURING_COW_SEARCH:
            for _ in range(20 + (fseed * 13) % 40):
                system.injector.arm_phase("cow_search", "noop",
                                          self.victim_cell)
            system.injector.arm_phase("cow_search",
                                      FaultInjector.NODE_FAILURE,
                                      self.victim_cell)
        elif scenario == HW_RANDOM_TIME:
            t = 500 * NS_PER_MS + (fseed * 367_934_871) % (3_000 * NS_PER_MS)
            system.injector.inject_at(t, FaultInjector.NODE_FAILURE,
                                      self.victim_cell, trigger="random")
        elif scenario in (SW_ADDRESS_MAP, SW_COW_TREE):
            # Corrupt once the victim has processes / COW structure;
            # schedule at a pseudo-random point mid-run.
            t = 1_000 * NS_PER_MS + (fseed * 217_645_199) % (2_000 * NS_PER_MS)

            def corrupt() -> None:
                mode = ALL_MODES[fseed % len(ALL_MODES)]
                if scenario == SW_ADDRESS_MAP:
                    rec = kfi.corrupt_address_map(
                        self.victim_cell, mode,
                        wild_writes=self.wild_writes)
                else:
                    rec = kfi.corrupt_cow_tree(
                        self.victim_cell, mode,
                        wild_writes=self.wild_writes)
                if rec is not None:
                    injected["t"] = rec.time_ns

            sim.schedule(t, corrupt)

        # "noop" arms are skipped occurrences: teach the injector.
        _orig_inject = system.injector.inject

        def inject_or_skip(kind, node_id, trigger="manual"):
            if kind == "noop":
                return None
            return _orig_inject(kind, node_id, trigger)

        system.injector.inject = inject_or_skip

        # -- main workload run ------------------------------------------
        notes = ""
        outputs_ok = True
        try:
            result = workload.run(platform, deadline_ns=900_000_000_000)
            outputs_ok = self._outputs_ok(platform, workload)
        except Exception as exc:  # workload-level failure
            notes = f"main workload: {type(exc).__name__}: {exc}"
            outputs_ok = False

        # -- detection / recovery bookkeeping -----------------------------
        records = [r for r in system.coordinator.records
                   if self.victim_cell in r.dead_cells]
        detected = bool(records)
        latency = None
        recovery_duration = None
        if detected and injected["t"] is not None:
            latency = max(0, records[0].last_entry_ns - injected["t"])
        if detected and records[0].entry_times:
            recovery_duration = (records[0].recovery_done_ns
                                 - min(records[0].entry_times.values()))

        survivors = [c for c in range(4) if c != self.victim_cell]
        survivors_alive = all(
            system.registry.cell_object(c) is not None
            and system.registry.cell_object(c).alive
            for c in survivors)

        # -- correctness check: pmake forking on all surviving cells ------
        check_ok = False
        if survivors_alive:
            check = PmakeWorkload(src_dir="/check/src", tmp_dir="/check/tmp",
                                  num_files=4,
                                  compute_per_job_ns=50 * NS_PER_MS)
            try:
                check_result = check.run(platform,
                                         deadline_ns=600_000_000_000)
                check_ok = (check_result.jobs_failed == 0
                            and check_result.outputs_ok)
            except Exception as exc:
                notes += f" check: {type(exc).__name__}: {exc}"
        contained = bool(detected and survivors_alive and check_ok
                         and outputs_ok)
        return FaultTrialResult(
            scenario=scenario, seed=seed,
            injected_at_ns=injected["t"] or -1,
            detected=detected,
            last_entry_latency_ns=latency,
            contained=contained,
            survivors_alive=survivors_alive,
            outputs_ok=outputs_ok,
            check_ok=check_ok,
            recovery_duration_ns=recovery_duration,
            notes=notes.strip(),
            fault_seed=fault_seed,
        )

    def _outputs_ok(self, platform: Platform, workload) -> bool:
        """Compare completed output files against reference patterns.

        Files whose writer was killed by the fault never registered an
        expected output, so only completed outputs are compared — the
        paper's criterion is *no corrupt data*, not *no lost work*.
        """
        for path, expected in workload.expected_outputs.items():
            errors = platform.verify_file(path, expected)
            real = [e for e in errors if "unavailable" not in e]
            if real:
                return False
        return True

    # -- scenario sweep ------------------------------------------------------------

    def run_scenario(self, scenario: str, trials: int,
                     seed_base: int = 0) -> ScenarioSummary:
        summary = ScenarioSummary(scenario=scenario)
        for i in range(trials):
            summary.trials.append(self.run_trial(scenario, seed_base + i))
        return summary

    def run_table_7_4(self, scale: float = 1.0,
                      seed_base: int = 0) -> Dict[str, ScenarioSummary]:
        """The full table; ``scale`` shrinks trial counts for fast runs."""
        out: Dict[str, ScenarioSummary] = {}
        for scenario, (_wl, n, _avg, _mx) in PAPER_TABLE_7_4.items():
            trials = max(1, int(round(n * scale)))
            out[scenario] = self.run_scenario(scenario, trials, seed_base)
        return out
