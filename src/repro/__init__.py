"""Reproduction of *Hive: Fault Containment for Shared-Memory
Multiprocessors* (Chapin et al., SOSP 1995).

Public entry points:

* :func:`repro.core.boot_hive` / :func:`repro.core.boot_irix` — boot a
  multicellular Hive or the IRIX-like baseline on a simulated FLASH
  machine;
* :class:`repro.sim.Simulator` — the deterministic discrete-event engine
  everything runs on;
* :mod:`repro.workloads` — the paper's workloads (pmake, ocean,
  raytrace) and microbenchmarks;
* :mod:`repro.bench` — the fault-injection experiment runner and
  paper-vs-measured reporting;
* ``python -m repro`` — command-line driver.

See README.md for a tour, DESIGN.md for the system inventory and
substitutions, and EXPERIMENTS.md for recorded paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
