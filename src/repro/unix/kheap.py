"""Typed kernel heap: simulated addresses and allocator type tags.

Careful reference (Section 4.1) validates remote pointers by "reading a
structure type identifier.  The type identifier is written by the memory
allocator and removed by the memory deallocator."  To make that protocol
real, every kernel structure that can be referenced across cells is
allocated from a :class:`KernelHeap`: the allocator assigns it a simulated
physical address inside the owning kernel's reserved memory and records a
type tag keyed by that address; deallocation erases the tag.

Cross-cell kernel pointers are stored as raw integer addresses (exactly the
representation a C kernel would use), so fault injection can corrupt them
into any of the pathological shapes the paper tested: "to address random
physical addresses in the same cell or other cells, to point one word away
from the original address, and to point back at the data structure itself."
The careful-reference checks then fire on the same conditions the real
system checked: misalignment, wrong memory range, missing/mismatched tag.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: allocation slot granularity; also the alignment every valid kernel
#: structure address satisfies.
KOBJ_ALIGN = 128


class KObject:
    """Base class for kernel structures allocated from a kernel heap.

    ``kaddr`` is the structure's simulated physical address (0 until
    allocated), ``ktype`` its allocator tag.
    """

    __slots__ = ("kaddr", "ktype")

    def __init__(self):
        self.kaddr = 0
        self.ktype = ""


class KernelHeap:
    """Allocator for one kernel's internal data region.

    The region is a physically contiguous range inside the cell's first
    node ("OS internal data" in Figure 3.1), so the careful-reference
    range check "addresses the memory range belonging to the expected
    cell" is a simple bounds test.
    """

    def __init__(self, cell_id: int, base_addr: int, size: int):
        if base_addr % KOBJ_ALIGN:
            raise ValueError("heap base must be slot aligned")
        self.cell_id = cell_id
        self.base = base_addr
        self.size = size
        self.limit = base_addr + size
        self._next = base_addr
        self._free: List[int] = []
        self._objects: Dict[int, Tuple[str, KObject]] = {}
        self.allocs = 0
        self.frees = 0

    # -- allocation ------------------------------------------------------

    def alloc(self, obj: KObject, ktype: str) -> int:
        """Give ``obj`` an address and record its type tag."""
        if obj.kaddr:
            raise ValueError(f"object already allocated at {obj.kaddr:#x}")
        if self._free:
            addr = self._free.pop()
        else:
            addr = self._next
            if addr + KOBJ_ALIGN > self.limit:
                raise MemoryError(
                    f"kernel heap of cell {self.cell_id} exhausted "
                    f"({self.allocs - self.frees} live objects)"
                )
            self._next += KOBJ_ALIGN
        obj.kaddr = addr
        obj.ktype = ktype
        self._objects[addr] = (ktype, obj)
        self.allocs += 1
        return addr

    def free(self, obj: KObject) -> None:
        """Remove the type tag (a later resolve of this address fails)."""
        entry = self._objects.pop(obj.kaddr, None)
        if entry is None:
            raise ValueError(f"free of unallocated address {obj.kaddr:#x}")
        self._free.append(obj.kaddr)
        self.frees += 1
        obj.kaddr = 0
        obj.ktype = ""

    # -- resolution (used by careful reference) ----------------------------

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.limit

    def resolve(self, addr: int) -> Optional[Tuple[str, KObject]]:
        """Look up the tag and object at ``addr``; None if untagged.

        An untagged address models reading freed or never-allocated kernel
        memory — the data read would be garbage, which the type-tag check
        catches.
        """
        return self._objects.get(addr)

    @property
    def live_objects(self) -> int:
        return len(self._objects)

    def clear(self) -> None:
        """Drop all allocations (cell reboot)."""
        self._objects.clear()
        self._free.clear()
        self._next = self.base
