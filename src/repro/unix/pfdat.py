"""Page frame data structures (pfdats) and the pfdat hash table.

Section 5.1 of the paper: "each page frame in paged memory is managed by
an entry in a table of page frame data structures (pfdats).  Each pfdat
records the logical page id of the data stored in the corresponding frame.
The logical page id has two components: a tag and an offset.  The tag
identifies the object to which the logical page belongs.  This can be
either a file ... or a node in the copy-on-write tree ...  The pfdats are
linked into a hash table that allows lookup by logical page id."

Hive's memory sharing adds *extended pfdats* (Section 5.2): dynamically
allocated pfdats that bind a logical page id to a page frame belonging to
another cell.  "Extended pfdats are used in both cases [logical and
physical sharing] to allow most of the kernel to operate on the remote
page as if it were a local page."  Section 5.5: "the logical-level and
physical-level state machines use separate storage within each pfdat" —
hence the disjoint field groups below.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.unix.kheap import KObject

#: A logical page id: (tag, offset).  The tag is a hashable object id —
#: ``("file", fs_id, inode)`` or ``("anon", cell_id, cow_node_id)``.
LogicalId = Tuple[tuple, int]


class _ExportSet(set):
    """``pf.export_writable`` with index maintenance built in.

    Every mutation notifies the owning :class:`PfdatTable` so its
    writable-by-cell index stays exact without touching any of the many
    call sites that add/discard/clear grantees.  A pfdat outside any
    table (``pf.table is None``) behaves as a plain set.
    """

    __slots__ = ("pf",)

    def __init__(self, pf: "Pfdat"):
        super().__init__()
        self.pf = pf

    def add(self, cell_id: int) -> None:
        if cell_id not in self:
            set.add(self, cell_id)
            table = self.pf.table
            if table is not None:
                table._export_added(self.pf, cell_id)

    def discard(self, cell_id: int) -> None:
        if cell_id in self:
            set.discard(self, cell_id)
            table = self.pf.table
            if table is not None:
                table._export_removed(self.pf, cell_id)

    def remove(self, cell_id: int) -> None:
        set.remove(self, cell_id)
        table = self.pf.table
        if table is not None:
            table._export_removed(self.pf, cell_id)

    def clear(self) -> None:
        if self:
            grantees = list(self)
            set.clear(self)
            table = self.pf.table
            if table is not None:
                for cell_id in grantees:
                    table._export_removed(self.pf, cell_id)

    def update(self, *others) -> None:
        for other in others:
            for cell_id in other:
                self.add(cell_id)

    def pop(self) -> int:
        cell_id = set.pop(self)
        table = self.pf.table
        if table is not None:
            table._export_removed(self.pf, cell_id)
        return cell_id


class Pfdat(KObject):
    """One page-frame descriptor."""

    __slots__ = (
        "frame", "logical_id", "valid", "dirty", "refcount",
        # logical-level sharing state (Figure 5.3a)
        "exported_to", "imported_from", "export_writable",
        # physical-level sharing state (Figure 5.3b)
        "loaned_to", "borrowed_from",
        # bookkeeping
        "extended", "on_free_list", "table", "seq",
    )

    def __init__(self, frame: int, extended: bool = False):
        super().__init__()
        self.frame = frame
        self.logical_id: Optional[LogicalId] = None
        self.valid = False           # frame holds meaningful data
        self.dirty = False           # modified with respect to backing store
        self.refcount = 0            # mappings + transient kernel references
        # Logical level: which client cells import this page (data-home
        # side), or which cell is the data home (client side).
        self.exported_to: Set[int] = set()
        self.export_writable: Set[int] = _ExportSet(self)
        self.imported_from: Optional[int] = None
        # Physical level: frame loaned out (memory-home side) or borrowed
        # (data-home side).
        self.loaned_to: Optional[int] = None
        self.borrowed_from: Optional[int] = None
        self.extended = extended
        self.on_free_list = False
        #: owning table and its insertion sequence number (the position
        #: in ``_by_frame``, which index queries sort by to reproduce
        #: the exact iteration order of the old full scans).
        self.table: Optional["PfdatTable"] = None
        self.seq = 0

    @property
    def is_shared_logically(self) -> bool:
        return bool(self.exported_to) or self.imported_from is not None

    @property
    def is_shared_physically(self) -> bool:
        return self.loaned_to is not None or self.borrowed_from is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ext" if self.extended else "reg"
        return (f"<Pfdat {kind} frame={self.frame} id={self.logical_id} "
                f"dirty={self.dirty} ref={self.refcount}>")


class NoFreeFrames(MemoryError):
    """The allocator found no acceptable free frame."""


class PfdatTable:
    """One kernel's page-frame table, hash table, and free list."""

    def __init__(self, owned_frames: Iterable[int]):
        self._by_frame: Dict[int, Pfdat] = {}
        self._hash: Dict[LogicalId, Pfdat] = {}
        self._free: Deque[int] = deque()
        self.owned_frames: Set[int] = set()
        # Writable-by-cell index over the *regular* (non-extended)
        # pfdats: grantee cell -> {frame: pfdat}.  Maintained by
        # ``_ExportSet`` so preemptive discard's working-set query is
        # O(result) instead of O(all frames).
        self._writable_by: Dict[int, Dict[int, Pfdat]] = {}
        #: regular pfdats with any grantee at all (the Section 4.2
        #: remotely-writable sample), frame -> pfdat.
        self._exported: Dict[int, Pfdat] = {}
        # Owned pfdats are materialized on first touch, not at boot: a
        # large machine has ~100k frames per kernel and most are never
        # referenced in a run.  ``_rank`` records each frame's position
        # in the boot order, which becomes the pfdat's ``seq`` when it
        # is created — identical to the eager table's numbering, so all
        # seq-sorted index queries are byte-for-byte unchanged.
        self._rank: Dict[int, int] = {}
        for frame in owned_frames:
            self._rank[frame] = len(self._rank)
            self._free.append(frame)
            self.owned_frames.add(frame)
        self._seq = len(self._rank)
        #: frames this kernel has loaned out: parked on a reserved list,
        #: "the memory home moves the page frame to a reserved list and
        #: ignores it until the data home frees it or fails" (Section 5.4).
        self.reserved: Dict[int, Pfdat] = {}
        self.lookups = 0
        self.hits = 0

    # -- writable-by-cell index -------------------------------------------

    def _adopt(self, pf: Pfdat) -> None:
        """Insert a pfdat into ``_by_frame``, recording its position."""
        pf.table = self
        pf.seq = self._seq
        self._seq += 1
        self._by_frame[pf.frame] = pf

    def _materialize(self, frame: int) -> Pfdat:
        """Create the regular pfdat for an owned frame on first touch."""
        pf = Pfdat(frame)
        pf.on_free_list = True
        pf.table = self
        pf.seq = self._rank[frame]
        self._by_frame[frame] = pf
        return pf

    def _export_added(self, pf: Pfdat, cell_id: int) -> None:
        if pf.extended:
            return
        self._writable_by.setdefault(cell_id, {})[pf.frame] = pf
        self._exported[pf.frame] = pf

    def _export_removed(self, pf: Pfdat, cell_id: int) -> None:
        if pf.extended:
            return
        grantees = self._writable_by.get(cell_id)
        if grantees is not None:
            grantees.pop(pf.frame, None)
            if not grantees:
                del self._writable_by[cell_id]
        if not pf.export_writable:
            self._exported.pop(pf.frame, None)

    def writable_by(self, cell_id: int) -> List[Pfdat]:
        """Regular pfdats granting write access to ``cell_id``, in the
        same order the old full table scan produced (O(result))."""
        grantees = self._writable_by.get(cell_id)
        if not grantees:
            return []
        return sorted(grantees.values(), key=lambda pf: pf.seq)

    def export_writable_count(self) -> int:
        """How many regular pfdats have any remote write grantee."""
        return len(self._exported)

    def imported_from_cell(self, cell_id: int) -> List[Pfdat]:
        """Materialized pfdats whose data home is ``cell_id``, in boot
        order.  Used by the provenance exposure snapshot (once per
        injected fault) and cheap because only touched frames are
        materialized."""
        return sorted(
            (pf for pf in self._by_frame.values()
             if pf.imported_from == cell_id),
            key=lambda pf: pf.seq)

    # -- hash table -------------------------------------------------------

    def lookup(self, logical_id: LogicalId) -> Optional[Pfdat]:
        self.lookups += 1
        pf = self._hash.get(logical_id)
        if pf is not None:
            self.hits += 1
        return pf

    def insert(self, pf: Pfdat, logical_id: LogicalId) -> None:
        if logical_id in self._hash:
            raise ValueError(f"duplicate logical id {logical_id}")
        if pf.logical_id is not None:
            raise ValueError(f"pfdat already bound to {pf.logical_id}")
        pf.logical_id = logical_id
        pf.valid = True
        self._hash[logical_id] = pf

    def remove(self, pf: Pfdat) -> None:
        if pf.logical_id is None:
            return
        current = self._hash.get(pf.logical_id)
        if current is pf:
            del self._hash[pf.logical_id]
        pf.logical_id = None
        pf.valid = False

    def by_frame(self, frame: int) -> Optional[Pfdat]:
        pf = self._by_frame.get(frame)
        if pf is None and frame in self.owned_frames:
            pf = self._materialize(frame)
        return pf

    def all_pfdats(self) -> List[Pfdat]:
        return list(self._by_frame.values())

    def hashed_pfdats(self) -> List[Pfdat]:
        return list(self._hash.values())

    # -- frame allocation -----------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    def alloc_frame(self) -> Pfdat:
        """Take a frame off the local free list."""
        while self._free:
            frame = self._free.popleft()
            pf = self._by_frame.get(frame)
            if pf is None:
                pf = self._materialize(frame)
            if not pf.on_free_list:
                continue  # stale entry (frame was reserved/loaned meanwhile)
            pf.on_free_list = False
            pf.dirty = False
            pf.refcount = 0
            return pf
        raise NoFreeFrames("local free list empty")

    def free_frame(self, pf: Pfdat) -> None:
        """Return a local frame to the free list."""
        if pf.extended:
            raise ValueError("extended pfdats are released, not freed")
        if pf.frame not in self.owned_frames:
            raise ValueError(f"frame {pf.frame} not owned by this kernel")
        if pf.refcount:
            raise ValueError(f"freeing frame {pf.frame} with refs")
        self.remove(pf)
        pf.exported_to.clear()
        pf.export_writable.clear()
        if not pf.on_free_list:
            pf.on_free_list = True
            self._free.append(pf.frame)

    # -- extended pfdats ----------------------------------------------------

    def alloc_extended(self, frame: int) -> Pfdat:
        """Allocate an extended pfdat bound to a (remote) frame."""
        if frame in self.owned_frames:
            raise ValueError(
                f"frame {frame} is local; reuse its regular pfdat "
                "(Section 5.5 reimport path)"
            )
        if frame in self._by_frame:
            raise ValueError(f"extended pfdat for frame {frame} exists")
        pf = Pfdat(frame, extended=True)
        self._adopt(pf)
        return pf

    def release_extended(self, pf: Pfdat) -> None:
        """Free an extended pfdat (its frame belongs to another cell)."""
        if not pf.extended:
            raise ValueError("not an extended pfdat")
        self.remove(pf)
        self._by_frame.pop(pf.frame, None)

    # -- physical-level frame movement ----------------------------------------

    def move_to_reserved(self, pf: Pfdat, borrower: int) -> None:
        """Loan a local frame: park it on the reserved list."""
        if pf.frame not in self.owned_frames:
            raise ValueError("can only loan owned frames")
        pf.loaned_to = borrower
        pf.on_free_list = False
        self.reserved[pf.frame] = pf

    def return_from_reserved(self, frame: int) -> Pfdat:
        pf = self.reserved.pop(frame)
        pf.loaned_to = None
        return pf

    def loaned_frames_to(self, cell_id: int) -> List[Pfdat]:
        return [pf for pf in self.reserved.values() if pf.loaned_to == cell_id]
