"""IRIX-like UNIX kernel substrate.

The Hive prototype "is based on and remains binary compatible with IRIX
5.2".  This package implements the IRIX structures the paper describes so
the Hive extensions are modifications of real code rather than stubs:

* the **pfdat** page-frame table and hash (Section 5.1) —
  :mod:`repro.unix.pfdat`;
* the **vnode** file-system interface, a disk file system with a unified
  page cache, and file generation numbers — :mod:`repro.unix.fs`;
* **copy-on-write trees** for anonymous memory (Section 5.3, "similar to
  the MACH approach") — :mod:`repro.unix.cow`;
* address spaces, regions and the page-fault path —
  :mod:`repro.unix.address_space`;
* processes, threads, file descriptors, signals, and a per-kernel
  scheduler — :mod:`repro.unix.process`, :mod:`repro.unix.sched`;
* a typed **kernel heap** that gives every kernel structure a simulated
  physical address and an allocator-maintained type tag — the substrate
  the careful reference protocol (Section 4.1) validates against —
  :mod:`repro.unix.kheap`;
* the assembled single-kernel OS — :mod:`repro.unix.kernel` — which boots
  either as the IRIX baseline (one kernel owning the whole machine) or as
  one Hive cell (owning a node range, extended by :mod:`repro.core`).
"""

from repro.unix.errors import (
    BadAddressError,
    FileError,
    KernelPanic,
    StaleGenerationError,
)
from repro.unix.kernel import LocalKernel

__all__ = [
    "BadAddressError",
    "FileError",
    "KernelPanic",
    "LocalKernel",
    "StaleGenerationError",
]
