"""Address spaces, regions, and page-table/TLB state.

A process address space is a list of :class:`Region` objects plus per-cell
page-table state.  The page tables are keyed by cell because a Hive
*spanning task* runs component processes on several cells that share one
logical address space (Section 3.2): each cell maintains its own hardware
mappings, and recovery removes exactly the remote ones.

Regions are kernel-heap objects, and an anonymous region refers to its
copy-on-write leaf *by kernel address* — this is the "pointer in the
process address map" that the Table 7.4 software fault injections corrupt.
File regions snapshot the file's generation number at map time, giving the
address-space half of the Section 4.2 discard error semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.unix.errors import BadAddressError
from repro.unix.kheap import KernelHeap, KObject

REGION_TAG = "region"
ASPACE_TAG = "aspace"

FILE_REGION = "file"
ANON_REGION = "anon"


@dataclass
class Pte:
    """One page-table entry: virtual page -> physical frame."""

    frame: int
    writable: bool
    #: the pfdat (regular or extended) backing this mapping, owned by the
    #: mapping cell
    pfdat: object = None
    #: data home of the page (for remote-mapping cleanup in recovery)
    data_home: int = -1


class Region(KObject):
    """A contiguous mapped range of an address space."""

    __slots__ = (
        "start_vpn", "npages", "kind", "writable", "shared",
        # file regions
        "fs_id", "ino", "data_home", "file_page_base", "generation",
        # anonymous regions: kernel address of the COW leaf + owner hint
        "cow_leaf_addr", "cow_leaf_cell",
        # spanning-task shared segments (Hive): which task and which of
        # its shared segments this region views
        "task_id", "share_key",
    )

    def __init__(self, start_vpn: int, npages: int, kind: str,
                 writable: bool, shared: bool = False):
        super().__init__()
        if npages <= 0:
            raise ValueError("region must span at least one page")
        self.start_vpn = start_vpn
        self.npages = npages
        self.kind = kind
        self.writable = writable
        self.shared = shared
        self.fs_id = -1
        self.ino = -1
        self.data_home = -1
        self.file_page_base = 0
        self.generation = 0
        self.cow_leaf_addr = 0
        self.cow_leaf_cell = -1
        self.task_id = None
        self.share_key = 0

    @property
    def end_vpn(self) -> int:
        return self.start_vpn + self.npages

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    def file_page_index(self, vpn: int) -> int:
        return self.file_page_base + (vpn - self.start_vpn)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Region {self.kind} vpn[{self.start_vpn},{self.end_vpn}) "
                f"{'rw' if self.writable else 'ro'}>")


class AddressSpace(KObject):
    """The address map of a process (or of a spanning task).

    ``ptes[cell_id]`` holds the hardware mappings established by that
    cell's component process.  Single-cell processes only ever populate
    one entry.
    """

    def __init__(self, home_cell: int):
        super().__init__()
        self.home_cell = home_cell
        self.regions: List[Region] = []
        self.ptes: Dict[int, Dict[int, Pte]] = {}
        self._next_vpn = 0x1000  # leave a null-page guard region
        self.refcount = 1        # component processes sharing this space

    # -- region management -------------------------------------------------

    def allocate_range(self, npages: int) -> int:
        """Pick an unused virtual range (simple bump allocation)."""
        start = self._next_vpn
        self._next_vpn += npages + 16  # guard gap
        return start

    def add_region(self, region: Region) -> Region:
        for existing in self.regions:
            if (region.start_vpn < existing.end_vpn
                    and existing.start_vpn < region.end_vpn):
                raise ValueError(
                    f"region overlap: {region} vs {existing}"
                )
        self.regions.append(region)
        return region

    def remove_region(self, region: Region) -> None:
        self.regions.remove(region)

    def region_for(self, vpn: int) -> Region:
        for region in self.regions:
            if region.contains(vpn):
                return region
        raise BadAddressError(vpn)

    # -- page tables ----------------------------------------------------------

    def pte_map(self, cell_id: int) -> Dict[int, Pte]:
        m = self.ptes.get(cell_id)
        if m is None:
            m = {}
            self.ptes[cell_id] = m
        return m

    def lookup_pte(self, cell_id: int, vpn: int) -> Optional[Pte]:
        return self.ptes.get(cell_id, {}).get(vpn)

    def map_page(self, cell_id: int, vpn: int, pte: Pte) -> None:
        self.pte_map(cell_id)[vpn] = pte

    def unmap_page(self, cell_id: int, vpn: int) -> Optional[Pte]:
        return self.ptes.get(cell_id, {}).pop(vpn, None)

    def unmap_all(self, cell_id: int) -> List[Tuple[int, Pte]]:
        m = self.ptes.pop(cell_id, {})
        return list(m.items())

    def remote_mappings(self, cell_id: int) -> List[Tuple[int, Pte]]:
        """Mappings established by ``cell_id`` to pages homed elsewhere.

        Recovery removes exactly these ("all remote mappings are removed
        during recovery", Section 4.2) so future accesses refault and are
        checked at the data home.
        """
        out = []
        for vpn, pte in self.ptes.get(cell_id, {}).items():
            if pte.data_home not in (-1, cell_id):
                out.append((vpn, pte))
        return out

    def mapped_count(self, cell_id: int) -> int:
        return len(self.ptes.get(cell_id, {}))
