"""Copy-on-write trees for anonymous memory (Section 5.3).

Anonymous pages are managed in copy-on-write trees (the paper notes the
approach is similar to Mach's).  A page written by a process is recorded
at the process's current *leaf* node.  On fork the leaf splits: two fresh
leaves are created with the old leaf as their parent, one assigned to the
parent process and one to the child, so pages written after the fork are
private while pages written before remain visible to both.  A fault
searches *up* the tree for the nearest ancestor that recorded the page.

In Hive the parent and child may live on different cells, so the tree's
parent pointers can cross cell boundaries.  Pointers are therefore stored
as raw kernel addresses (``parent_addr``) plus a hint of the owning cell;
remote hops are resolved through the careful reference protocol by the
Hive layer.  "This does not create a wild write vulnerability because the
lookup algorithms do not need to modify the interior nodes of the tree or
synchronize access to them."

The cell that owns a tree node is the *data home* for every anonymous
page recorded in that node.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.unix.kheap import KernelHeap, KObject

#: allocator type tag for COW nodes (checked by careful reference)
COW_NODE_TAG = "cownode"


class CowNode(KObject):
    """One node of a copy-on-write tree."""

    __slots__ = ("node_id", "owner_cell", "parent_addr", "parent_cell",
                 "pages", "refs")

    def __init__(self, node_id: int, owner_cell: int):
        super().__init__()
        self.node_id = node_id
        self.owner_cell = owner_cell
        #: kernel address of the parent node; 0 at the root.  May point
        #: into another cell's kernel memory.
        self.parent_addr = 0
        #: hint: which cell owns the parent (what a C kernel would encode
        #: in the address itself; kept separate for clarity).
        self.parent_cell = owner_cell
        #: page indices recorded at this node.  The data for page ``i`` of
        #: node ``n`` lives in the page cache under logical id
        #: ``(("anon", owner_cell, node_id), i)``.
        self.pages: Set[int] = set()
        #: processes whose leaf this is + child nodes keeping it alive.
        self.refs = 0

    def anon_tag(self) -> tuple:
        return ("anon", self.owner_cell, self.node_id)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CowNode {self.owner_cell}:{self.node_id} "
                f"pages={len(self.pages)} refs={self.refs}>")


class CowManager:
    """Per-kernel manager of the COW nodes owned by that kernel."""

    def __init__(self, cell_id: int, heap: KernelHeap):
        self.cell_id = cell_id
        self.heap = heap
        self._next_id = 1
        self._nodes: Dict[int, CowNode] = {}
        self.splits = 0

    # -- allocation -------------------------------------------------------

    def new_root(self) -> CowNode:
        """A fresh tree for a process with no COW ancestry (exec)."""
        node = self._alloc()
        node.refs = 1
        return node

    def _alloc(self) -> CowNode:
        node = CowNode(self._next_id, self.cell_id)
        self._next_id += 1
        self.heap.alloc(node, COW_NODE_TAG)
        self._nodes[node.node_id] = node
        return node

    def node(self, node_id: int) -> Optional[CowNode]:
        return self._nodes.get(node_id)

    # -- fork ----------------------------------------------------------------

    def split_leaf(self, leaf: CowNode) -> Tuple[CowNode, CowNode]:
        """Split ``leaf`` for a fork: returns (parent_leaf, child_leaf).

        The old leaf becomes an interior node referenced by both new
        leaves; the caller rebinds the two processes to the new leaves.
        The child leaf is allocated *locally* ("the leaf node ... is
        always local to a process"); for a cross-cell fork the remote
        cell allocates the child leaf in its own manager and links it to
        the old leaf by address.
        """
        self.splits += 1
        parent_leaf = self._alloc()
        child_leaf = self._alloc()
        for new in (parent_leaf, child_leaf):
            new.parent_addr = leaf.kaddr
            new.parent_cell = leaf.owner_cell
            new.refs = 1
        # leaf loses its process ref (caller moves it) but gains two
        # children: net +1.
        leaf.refs += 1
        return parent_leaf, child_leaf

    def adopt_remote_child(self, parent_addr: int, parent_cell: int) -> CowNode:
        """Allocate a local leaf whose parent lives on another cell."""
        node = self._alloc()
        node.parent_addr = parent_addr
        node.parent_cell = parent_cell
        node.refs = 1
        return node

    # -- page recording -----------------------------------------------------

    def record_page(self, leaf: CowNode, page_index: int) -> None:
        if leaf.owner_cell != self.cell_id:
            raise ValueError("pages are recorded only at local leaves")
        leaf.pages.add(page_index)

    # -- local ancestry walk -----------------------------------------------
    #
    # The single-kernel (IRIX) path; Hive's cross-cell walk lives in
    # repro.core.sharing_logical and applies careful reference per hop.

    def local_ancestry(self, leaf: CowNode) -> Generator[CowNode, None, None]:
        node: Optional[CowNode] = leaf
        hops = 0
        while node is not None:
            yield node
            if node.parent_addr == 0:
                return
            resolved = self.heap.resolve(node.parent_addr)
            if resolved is None or resolved[0] != COW_NODE_TAG:
                raise LookupError(
                    f"corrupt COW parent pointer {node.parent_addr:#x}"
                )
            node = resolved[1]
            hops += 1
            if hops > 10_000:
                raise LookupError("COW tree loop detected")

    # -- teardown -------------------------------------------------------------

    def deref(self, node: CowNode) -> List[tuple]:
        """Drop one reference; free unreferenced chain toward the root.

        Returns the list of ``(anon_tag, page_index)`` logical ids whose
        data can be freed from the page cache.  Only local parents are
        walked; a remote parent's refcount is decremented by the Hive
        layer via RPC.
        """
        freed: List[tuple] = []
        current: Optional[CowNode] = node
        while current is not None and current.owner_cell == self.cell_id:
            current.refs -= 1
            if current.refs > 0:
                return freed
            tag = current.anon_tag()
            freed.extend((tag, idx) for idx in sorted(current.pages))
            self._nodes.pop(current.node_id, None)
            if current.kaddr:
                self.heap.free(current)
            if current.parent_addr == 0:
                return freed
            if current.parent_cell != self.cell_id:
                # Remote parent: caller must send a deref RPC.
                freed.append(("remote-parent",
                              current.parent_cell, current.parent_addr))
                return freed
            resolved = self.heap.resolve(current.parent_addr)
            current = resolved[1] if resolved else None
        return freed

    @property
    def live_nodes(self) -> int:
        return len(self._nodes)
