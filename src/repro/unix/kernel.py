"""The assembled single-kernel UNIX (the IRIX 5.2 stand-in).

:class:`LocalKernel` boots on a set of nodes it owns, builds the kernel
heap, pfdat table, file systems, COW manager, and scheduler over them, and
exposes the syscall surface the workloads use.  Booted over *all* nodes
with the firewall disabled it is the paper's IRIX baseline; booted over a
node range it is the substrate one Hive cell extends
(:class:`repro.core.cell.Cell` subclasses this and overrides the remote
hooks).

Workload programs are coroutines receiving a :class:`ProcContext`::

    def program(ctx):
        fd = yield from ctx.open("/tmp/out", "w", create=True)
        yield from ctx.write(fd, b"hello")
        yield from ctx.compute(2_000_000)   # 2 ms of user time
        yield from ctx.close(fd)

Every context operation charges simulated time per the cost model and
holds a specific CPU while executing, so firewall checks see the true
writing processor and CPU contention emerges from the scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.hardware.errors import BusError
from repro.hardware.machine import Machine
from repro.obs.recorder import NULL_RECORDER
from repro.sim.engine import Interrupted, Simulator
from repro.sim.stats import MetricSet
from repro.unix.address_space import (
    ANON_REGION,
    ASPACE_TAG,
    FILE_REGION,
    AddressSpace,
    Pte,
    Region,
    REGION_TAG,
)
from repro.unix.costs import DEFAULT_COSTS, KernelCosts
from repro.unix.cow import CowManager, CowNode
from repro.unix.errors import (
    BadAddressError,
    CellFailedError,
    FileError,
    KernelPanic,
    ProcessKilled,
    StaleGenerationError,
)
from repro.unix.fs import PAGE, DiskFileSystem, Inode, Vnode
from repro.unix.kheap import KernelHeap
from repro.unix.pfdat import NoFreeFrames, Pfdat, PfdatTable
from repro.unix.process import (
    PROC_TAG,
    SIGKILL,
    FileDescriptor,
    Process,
    Thread,
)
from repro.unix.sched import Scheduler

#: pages at the very bottom of each node reserved for the remap region
#: (trap vectors); the kernel heap follows them.
REMAP_PAGES = 4
#: pages of each kernel's first node reserved for kernel internal data
#: ("OS internal data" at the bottom of the cell's range, Figure 3.1).
KERNEL_RESERVED_PAGES = 1024  # 4 MB


class GlobalNamespace:
    """Maps paths to the node (and hence file system) that serves them.

    One file system lives on each node's disk.  A path is served by the
    file system of its top-level directory's home node — a stable hash by
    default, overridable with explicit mounts (the benchmarks pin ``/tmp``
    to one node to reproduce the pmake file-server effect).
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.mounts: Dict[str, int] = {}

    def mount(self, prefix: str, node_id: int) -> None:
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must be absolute")
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"bad node {node_id}")
        self.mounts[prefix.rstrip("/") or "/"] = node_id

    def node_for(self, path: str) -> int:
        best = None
        for prefix, node in self.mounts.items():
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                if best is None or len(prefix) > len(best[0]):
                    best = (prefix, node)
        if best is not None:
            return best[1]
        top = path.split("/")[1] if "/" in path[1:] or len(path) > 1 else ""
        h = 0
        for ch in top:
            h = (h * 131 + ord(ch)) & 0xFFFFFFFF
        return h % self.num_nodes


class ProcContext:
    """The syscall interface handed to workload programs."""

    def __init__(self, kernel: "LocalKernel", thread: Thread):
        self.kernel = kernel
        self.thread = thread

    @property
    def process(self) -> Process:
        return self.thread.process

    @property
    def cpu(self) -> int:
        if self.thread.cpu is None:
            raise RuntimeError(f"{self.thread} not on CPU")
        return self.thread.cpu

    @property
    def sim(self) -> Simulator:
        return self.kernel.sim

    # -- CPU handling ---------------------------------------------------

    def _ensure_cpu(self) -> Generator:
        self.thread.check_killed()
        self.kernel.check_alive()
        yield from self.kernel.user_gate(self.thread)
        if self.thread.cpu is None:
            cpu = yield self.kernel.sched.acquire(self.process.pid)
            self.thread.cpu = cpu
        yield from self._freeze_if_halted()
        return None

    def _freeze_if_halted(self) -> Generator:
        """A thread on a halted processor executes nothing more.

        It parks on an event that never triggers; the recovery round
        kills it once agreement confirms the cell failed.
        """
        cpu = self.thread.cpu
        if cpu is not None and self.kernel.machine.cpu(cpu).halted:
            yield self.sim.event(f"halted.cpu{cpu}")
        return None

    def _yield_cpu(self) -> None:
        if self.thread.cpu is not None:
            self.kernel.sched.release(self.thread.cpu)
            self.thread.cpu = None

    def block(self, gen) -> Generator:
        """Run a blocking kernel coroutine: release the CPU while waiting."""
        self._yield_cpu()
        result = yield from gen
        yield from self._ensure_cpu()
        return result

    def compute(self, duration_ns: int) -> Generator:
        """Run on a CPU for ``duration_ns`` of user time, quantum-sliced."""
        yield from self._ensure_cpu()
        remaining = int(duration_ns)
        quantum = self.kernel.costs.scheduler_quantum_ns
        while remaining > 0:
            slice_ns = min(remaining, quantum)
            # Interrupt handlers and RPC servers stole cycles from this
            # CPU; the user computation stretches accordingly.
            slice_ns += self.kernel.drain_stolen(slice_ns)
            yield self.sim.timeout(slice_ns)
            remaining -= slice_ns
            self.thread.check_killed()
            self.kernel.check_alive()
            yield from self._freeze_if_halted()
            if self.kernel.user_suspended:
                # Recovery in progress: step off the CPU until resumed.
                self._yield_cpu()
                yield from self._ensure_cpu()
                continue
            if remaining > 0 and self.kernel.sched.has_waiters:
                # Round-robin: give the CPU up and requeue.
                self.kernel.sched.context_switches += 1
                self._yield_cpu()
                yield self.sim.timeout(self.kernel.costs.context_switch_ns)
                yield from self._ensure_cpu()
        return None

    # -- syscalls (thin wrappers; logic lives on the kernel) ----------------

    def spawn(self, program: Callable, name: str = "child",
              target_cell: Optional[int] = None) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_spawn(
            self, program, name, target_cell))

    def waitpid(self, pid: int) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_waitpid(self, pid))

    def exit(self, status: int = 0) -> Generator:
        yield from self.kernel.sys_exit(self, status)
        return None

    def open(self, path: str, mode: str = "r",
             create: bool = False) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_open(self, path, mode, create))

    def close(self, fdnum: int) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_close(self, fdnum))

    def read(self, fdnum: int, nbytes: int) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_read(self, fdnum, nbytes))

    def write(self, fdnum: int, data: bytes) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_write(self, fdnum, data))

    def unlink(self, path: str) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_unlink(self, path))

    def map_file(self, path: str, writable: bool = False,
                 shared: bool = True) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_map_file(
            self, path, writable, shared))

    def map_anon(self, npages: int, writable: bool = True) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_map_anon(self, npages, writable))

    def touch(self, region: Region, page_index: int,
              write: bool = False) -> Generator:
        """Access one page of a mapped region (fault on first touch)."""
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_touch(
            self, region, page_index, write))

    def touch_many(self, region: Region, start_index: int = 0,
                   count: Optional[int] = None,
                   write: bool = False) -> Generator:
        """Access a run of consecutive pages as one batched reference."""
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_touch_many(
            self, region, start_index, count, write))

    def signal(self, pid: int, sig: int) -> Generator:
        yield from self._ensure_cpu()
        return (yield from self.kernel.sys_kill(self, pid, sig))

    def phase(self, name: str) -> None:
        """Publish a named phase (fault-injection trigger point)."""
        self.kernel.publish_phase(name)


class LocalKernel:
    """One UNIX kernel instance owning a range of nodes."""

    def __init__(self, sim: Simulator, machine: Machine, kernel_id: int,
                 node_ids: List[int], namespace: GlobalNamespace,
                 costs: Optional[KernelCosts] = None,
                 clock_tick_ns: Optional[int] = None):
        self.sim = sim
        self.machine = machine
        self.kernel_id = kernel_id
        self.node_ids = list(node_ids)
        self.namespace = namespace
        self.costs = costs or DEFAULT_COSTS
        self.clock_tick_ns = clock_tick_ns or self.costs.clock_tick_ns
        params = machine.params

        self.cpu_ids: List[int] = []
        for node in self.node_ids:
            base = node * params.cpus_per_node
            self.cpu_ids.extend(range(base, base + params.cpus_per_node))

        # Configure each owned node's firewall so every processor of this
        # kernel (cell) can write the kernel's own memory; the firewall
        # defends cell borders, not node borders within a cell.
        if machine.memory.firewall_enabled:
            for node in self.node_ids:
                machine.memory.firewalls[node].set_default_mask_for_nodes(
                    self.node_ids, node)

        # Memory layout: remap region + kernel reserved pages on the first
        # owned node; everything else is paged memory.
        first = self.node_ids[0]
        first_base_frame = first * params.pages_per_node
        heap_base_frame = first_base_frame + REMAP_PAGES + 1
        heap_frames = KERNEL_RESERVED_PAGES - REMAP_PAGES - 1
        self.heap = KernelHeap(
            kernel_id,
            heap_base_frame * params.page_size,
            heap_frames * params.page_size,
        )
        #: the shared-memory word this kernel increments on every clock
        #: interrupt (watched by its monitor cell in Hive, Section 4.3)
        self.heartbeat_addr = (first_base_frame + REMAP_PAGES) * params.page_size
        self.heartbeat_value = 0

        paged: List[int] = []
        for node in self.node_ids:
            base = node * params.pages_per_node
            start = base + (KERNEL_RESERVED_PAGES if node == first else 0)
            paged.extend(range(start, base + params.pages_per_node))
        self.pfdats = PfdatTable(paged)

        # One file system per owned node's disk.
        self.filesystems: Dict[int, DiskFileSystem] = {}
        for node in self.node_ids:
            disk = machine.nodes[node].disk
            self.filesystems[node] = DiskFileSystem(
                sim, fs_id=node, disk=disk, home_cell=kernel_id)

        self.cow = CowManager(kernel_id, self.heap)
        # Swap space on the first owned disk, and the page-replacement
        # daemon that keeps a free reserve (Table 3.4's clock hand).
        from repro.unix.swap import ClockHand, SwapSpace

        self.swap = SwapSpace(sim, machine.nodes[first].disk)
        self.clockhand = ClockHand(self)
        self.sched = Scheduler(sim, self.cpu_ids, self.costs,
                               name=f"k{kernel_id}.sched")
        self.processes: Dict[int, Process] = {}
        self._next_pid = kernel_id * 100_000 + 10
        self._wait_events: Dict[int, list] = {}
        self.metrics = MetricSet(name=f"kernel{kernel_id}")
        #: flight-recorder handle; ``attach_flight_recorder`` swaps in a
        #: live recorder.  Hot paths guard on ``self.obs.enabled`` so the
        #: null default costs one attribute load per instrumented site.
        self.obs = NULL_RECORDER
        self.alive = True
        self.panic_reason: Optional[str] = None
        #: while True, user-level threads park at their next gate (the
        #: Section 4.3 user-level suspension during agreement/recovery).
        self.user_suspended = False
        self._resume_events: List = []
        #: CPU time consumed by interrupt handlers and kernel server
        #: processes (RPC service); it is *stolen* from whatever user
        #: threads run on this kernel's CPUs — the next compute slices
        #: stretch by the accumulated amount (per CPU).
        self._stolen_ns = 0
        #: callbacks fired when this kernel panics (Hive wires detection)
        self.panic_hooks: List[Callable[[str], None]] = []
        #: phase listeners (fault injection trigger points)
        self.phase_hooks: List[Callable[[str], None]] = []
        self._clock_proc = sim.process(self._clock_loop(),
                                       name=f"k{kernel_id}.clock")

    # ------------------------------------------------------------------
    # liveness / panic
    # ------------------------------------------------------------------

    def check_alive(self) -> None:
        if not self.alive:
            raise ProcessKilled(0, f"kernel {self.kernel_id} is down")

    def panic(self, reason: str) -> None:
        """Shut this kernel down (Section 4.1 cell panic semantics)."""
        if not self.alive:
            return
        self.alive = False
        self.panic_reason = reason
        # Engage the memory cutoff so no other node reads potentially
        # corrupt data from our memory (Table 8.1).
        for node in self.node_ids:
            self.machine.engage_cutoff(node)
        # Halt every local thread.
        for proc in list(self.processes.values()):
            for thread in list(proc.threads):
                thread.kill(f"cell panic: {reason}")
        for hook in list(self.panic_hooks):
            hook(reason)

    def publish_phase(self, name: str) -> None:
        for hook in list(self.phase_hooks):
            hook(name)

    def note_cpu_steal(self, ns: int) -> None:
        """Record interrupt/server CPU time stolen from user threads."""
        self._stolen_ns += int(ns)

    def drain_stolen(self, cap_ns: int) -> int:
        """Take up to ``cap_ns`` of pending stolen time (per-CPU share)."""
        share = min(self._stolen_ns // max(1, len(self.cpu_ids)), cap_ns)
        self._stolen_ns -= share * max(1, len(self.cpu_ids))
        if self._stolen_ns < 0:
            self._stolen_ns = 0
        return share

    # ------------------------------------------------------------------
    # user-level suspension (used by agreement/recovery)
    # ------------------------------------------------------------------

    def suspend_user(self) -> None:
        """Park user-level threads at their next kernel entry or quantum."""
        self.user_suspended = True

    def resume_user(self) -> None:
        self.user_suspended = False
        events, self._resume_events = self._resume_events, []
        for ev in events:
            if not ev.triggered:
                ev.succeed()

    def user_gate(self, thread: Thread) -> Generator:
        """Block a user-level thread while the cell is suspended."""
        while self.user_suspended and self.alive:
            if thread.cpu is not None:
                self.sched.release(thread.cpu)
                thread.cpu = None
            ev = self.sim.event(f"k{self.kernel_id}.resume")
            self._resume_events.append(ev)
            yield ev
            thread.check_killed()
        return None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    def _clock_loop(self) -> Generator:
        cpu0 = self.cpu_ids[0]
        # Cells boot at slightly different times, so their clock
        # interrupts are phase-shifted — detection latency then depends
        # on where in the monitor's tick period a fault lands.
        phase = (self.kernel_id * 2_700_000 + 1_300_000) % self.clock_tick_ns
        yield self.sim.timeout(phase)
        while True:
            yield self.sim.timeout(self.clock_tick_ns)
            if not self.alive:
                return
            if self.machine.nodes[self.node_ids[0]].halted:
                return  # a halted processor stops ticking
            try:
                self.machine.coherence.write(cpu0, self.heartbeat_addr)
            except BusError:
                self.panic("bus error updating clock word")
                return
            self.heartbeat_value += 1
            self.clock_tick_hook()

    def clock_tick_hook(self) -> None:
        """Extended by Hive cells (clock monitoring of other cells)."""

    def clockhand_preferred_source(self) -> Optional[int]:
        """Which foreign cell's memory the clock hand should free first.

        The base kernel has no intercell memory; Hive cells return Wax's
        ``clockhand_target`` hint (Section 5.7).
        """
        return None

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def new_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def create_process(self, name: str, parent: Optional[Process] = None,
                       aspace: Optional[AddressSpace] = None) -> Process:
        if aspace is None:
            aspace = AddressSpace(self.kernel_id)
            self.heap.alloc(aspace, ASPACE_TAG)
        proc = Process(self.new_pid(), self.kernel_id, aspace,
                       name=name, parent=parent)
        self.heap.alloc(proc, PROC_TAG)
        # A fresh process gets a fresh COW root for its anonymous memory.
        leaf = self.cow.new_root()
        proc.cow_leaf_addr = leaf.kaddr
        proc.cow_leaf_cell = self.kernel_id
        if parent is not None:
            parent.children.append(proc)
        self.processes[proc.pid] = proc
        return proc

    def start_thread(self, proc: Process, program: Callable,
                     name: str = "") -> Thread:
        thread = Thread(proc, name=name)
        thread.sim_process = self.sim.process(
            self._thread_main(thread, program), name=thread.name)
        return thread

    def _thread_main(self, thread: Thread, program: Callable) -> Generator:
        ctx = ProcContext(self, thread)
        status = 0
        try:
            yield from ctx._ensure_cpu()
            yield from program(ctx)
        except ProcessKilled:
            status = -1
        except Interrupted:
            status = -1
        except (BadAddressError, StaleGenerationError, FileError,
                CellFailedError):
            # I/O and remote-cell errors the program chose not to handle
            # terminate it with an error status (the paper's semantics:
            # processes using a failed cell's resources see errors).
            status = 1
        except BusError as exc:
            # A bus error during kernel execution outside a careful
            # section indicates internal corruption (or our own node
            # failing): the cell panics (Section 4.1).
            status = -1
            self.panic(f"bus error during kernel execution: {exc}")
        finally:
            ctx._yield_cpu()
            self._thread_exited(thread, status)
        return status

    def _thread_exited(self, thread: Thread, status: int) -> None:
        proc = thread.process
        if thread in proc.threads:
            proc.threads.remove(thread)
        if not proc.threads and not proc.exited:
            self._reap_process(proc, status)

    def _reap_process(self, proc: Process, status: int) -> None:
        proc.exited = True
        proc.exit_status = status
        proc.zombie = True
        self.teardown_address_space(proc)
        proc.fds.clear()
        self.sched.release_reservation(proc.pid)
        for ev in self._wait_events.pop(proc.pid, []):
            if not ev.triggered:
                ev.succeed(status)

    def teardown_address_space(self, proc: Process) -> None:
        """Unmap everything and release COW/anon pages on process exit."""
        aspace = proc.aspace
        aspace.refcount -= 1
        for vpn, pte in aspace.unmap_all(self.kernel_id):
            self._drop_mapping(pte)
        if aspace.refcount <= 0 and aspace.kaddr:
            for region in list(aspace.regions):
                if region.kaddr:
                    self.heap.free(region)
            aspace.regions.clear()
            self.heap.free(aspace)
        leaf = self._resolve_local_cow(proc.cow_leaf_addr)
        if leaf is not None:
            self._release_cow_chain(leaf)
        if proc.kaddr:
            self.heap.free(proc)

    def _release_cow_chain(self, leaf: CowNode) -> None:
        for item in self.cow.deref(leaf):
            if item[0] == "remote-parent":
                _, cell, addr = item
                self.remote_cow_deref(cell, addr)
                continue
            tag, idx = item
            self.swap.discard((tag, idx))
            pf = self.pfdats.lookup((tag, idx))
            if pf is not None and pf.refcount == 0 and not pf.extended:
                self.pfdats.free_frame(pf)

    def remote_cow_deref(self, cell: int, addr: int) -> None:
        """Hook: Hive sends a deref RPC; standalone kernels never need it."""

    def _drop_mapping(self, pte: Pte) -> None:
        pf = pte.pfdat
        if pf is None:
            return
        pf.refcount -= 1
        if pf.extended and pf.refcount == 0:
            self.release_imported_page(pf)

    def release_imported_page(self, pf: Pfdat) -> None:
        """Hook: Hive releases extended pfdats back to the data home."""

    # -- syscall: spawn / wait / exit / kill ------------------------------

    def sys_spawn(self, ctx: ProcContext, program: Callable, name: str,
                  target_cell: Optional[int]) -> Generator:
        """fork + exec of a fresh program; returns the child pid."""
        self.publish_phase("process_creation")
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.fork_ns + self.costs.exec_ns)
        if target_cell is not None and target_cell != self.kernel_id:
            return (yield from self.spawn_remote(
                ctx, program, name, target_cell))
        parent = ctx.process
        child = self.create_process(name, parent=parent)
        self._fork_anon_into_child(parent, child)
        self.start_thread(child, program)
        self.metrics.counter("spawns").add()
        return child.pid

    def _fork_anon_into_child(self, parent: Process,
                              child: Process) -> None:
        """Local fork: the child shares pre-fork anonymous pages COW.

        The parent's leaf splits (Section 5.3): both processes move to
        fresh leaves under the old leaf, and the child inherits the
        parent's anonymous regions at the same virtual addresses.
        """
        old_leaf = self._resolve_local_cow(parent.cow_leaf_addr)
        if old_leaf is None or parent.cow_leaf_cell != self.kernel_id:
            return
        parent_leaf, child_leaf = self.cow.split_leaf(old_leaf)
        parent.cow_leaf_addr = parent_leaf.kaddr
        # The child's fresh root from create_process is unused; drop it.
        stale = self._resolve_local_cow(child.cow_leaf_addr)
        if stale is not None:
            self.cow.deref(stale)
        child.cow_leaf_addr = child_leaf.kaddr
        child.cow_leaf_cell = self.kernel_id
        for region in parent.aspace.regions:
            if region.kind != ANON_REGION or region.task_id is not None:
                continue
            region.cow_leaf_addr = parent_leaf.kaddr
            clone = Region(region.start_vpn, region.npages, ANON_REGION,
                           region.writable)
            clone.cow_leaf_addr = child_leaf.kaddr
            clone.cow_leaf_cell = self.kernel_id
            self.heap.alloc(clone, REGION_TAG)
            child.aspace.add_region(clone)
            child.aspace._next_vpn = max(
                child.aspace._next_vpn,
                region.start_vpn + region.npages + 16)

    def spawn_remote(self, ctx: ProcContext, program: Callable, name: str,
                     target_cell: int) -> Generator:
        raise FileError("EINVAL",
                        "remote spawn requires a Hive cell kernel")
        yield  # pragma: no cover

    def sys_waitpid(self, ctx: ProcContext, pid: int) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.wait_ns)
        proc = self.processes.get(pid)
        if proc is None:
            raise FileError("ECHILD", f"no such child {pid}")
        if proc.exited:
            proc.zombie = False
            return proc.exit_status
        ev = self.sim.event(f"wait.{pid}")
        self._wait_events.setdefault(pid, []).append(ev)
        status = yield from ctx.block(self._wait_on(ev))
        proc.zombie = False
        return status

    @staticmethod
    def _wait_on(ev) -> Generator:
        result = yield ev
        return result

    def sys_exit(self, ctx: ProcContext, status: int) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.exit_ns)
        proc = ctx.process
        for thread in list(proc.threads):
            if thread is not ctx.thread:
                thread.kill("exit() by sibling thread")
        raise ProcessKilled(proc.pid, f"exit({status})")

    def sys_kill(self, ctx: ProcContext, pid: int, sig: int) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.signal_deliver_ns)
        target = self.processes.get(pid)
        if target is None:
            return (yield from self.signal_remote(ctx, pid, sig))
        target.post_signal(sig)
        return True

    def signal_remote(self, ctx: ProcContext, pid: int, sig: int) -> Generator:
        raise FileError("ESRCH", f"no such process {pid}")
        yield  # pragma: no cover

    # -- syscall: file system ------------------------------------------------

    def fs_node_for(self, path: str) -> int:
        return self.namespace.node_for(path)

    def local_fs_for(self, path: str) -> Optional[DiskFileSystem]:
        node = self.fs_node_for(path)
        return self.filesystems.get(node)

    def sys_open(self, ctx: ProcContext, path: str, mode: str,
                 create: bool) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns)
        fs = self.local_fs_for(path)
        if fs is None:
            return (yield from self.open_remote(ctx, path, mode, create))
        yield self.sim.timeout(self.costs.open_local_ns)
        if create and not fs.exists(path):
            yield self.sim.timeout(self.costs.create_ns)
            fs.create(path)
        inode = fs.lookup(path)
        fd = ctx.process.install_fd(
            fs.fs_id, inode.ino, data_home=self.kernel_id, mode=mode,
            generation=inode.generation)
        self.metrics.counter("opens.local").add()
        return fd.fd

    def open_remote(self, ctx: ProcContext, path: str, mode: str,
                    create: bool) -> Generator:
        raise FileError("ENODEV",
                        f"{path}: served by node {self.fs_node_for(path)}, "
                        "not owned by this kernel")
        yield  # pragma: no cover

    def sys_close(self, ctx: ProcContext, fdnum: int) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.close_ns)
        ctx.process.close_fd(fdnum)
        return None

    def sys_unlink(self, ctx: ProcContext, path: str) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.unlink_ns)
        fs = self.local_fs_for(path)
        if fs is None:
            return (yield from self.unlink_remote(ctx, path))
        inode = fs.unlink(path)
        self._invalidate_file_cache(fs.fs_id, inode)
        return None

    def unlink_remote(self, ctx: ProcContext, path: str) -> Generator:
        raise FileError("ENODEV", f"{path}: remote unlink needs Hive")
        yield  # pragma: no cover

    def _invalidate_file_cache(self, fs_id: int, inode: Inode) -> None:
        tag = ("file", fs_id, inode.ino)
        for idx in range(inode.npages):
            pf = self.pfdats.lookup((tag, idx))
            if pf is not None and pf.refcount == 0 and not pf.extended:
                self.pfdats.free_frame(pf)

    # -- file page cache -------------------------------------------------------

    def _fd_inode(self, fd: FileDescriptor) -> Tuple[DiskFileSystem, Inode]:
        fs = self.filesystems.get(fd.fs_id)
        if fs is None:
            raise FileError("ESTALE", f"fs {fd.fs_id} not local")
        return fs, fs.inode(fd.ino)

    def _check_generation(self, fd: FileDescriptor, inode: Inode,
                          path: str = "") -> None:
        if fd.generation != inode.generation:
            raise StaleGenerationError(path or inode.path,
                                       fd.generation, inode.generation)

    def get_file_page(self, fs: DiskFileSystem, inode: Inode,
                      page_index: int, ctx: Optional[ProcContext] = None,
                      for_write: bool = False,
                      no_fill: bool = False) -> Generator:
        """Find-or-fill one file page in the local page cache.

        Returns the pfdat.  This is the Section 5.1 path: hash lookup,
        then vnode read (a disk access) on a miss.  ``no_fill`` skips the
        disk read for pages about to be fully overwritten or created by
        an extending write — there is nothing meaningful to fetch.
        """
        tag = ("file", fs.fs_id, inode.ino)
        yield self.sim.timeout(self.costs.pfdat_hash_lookup_ns)
        pf = self.pfdats.lookup((tag, page_index))
        if pf is not None:
            return pf
        pf = yield from self.alloc_frame(ctx)
        if no_fill:
            self.machine.memory.zero_page(pf.frame,
                                          cpu=self._dma_cpu(pf.frame))
            self.pfdats.insert(pf, (tag, page_index))
            return pf
        if ctx is not None:
            data = yield from ctx.block(
                fs.read_page_from_disk(inode, page_index))
        else:
            data = yield from fs.read_page_from_disk(inode, page_index)
        self.machine.memory.write_page(pf.frame, data,
                                       cpu=self._dma_cpu(pf.frame))
        self.pfdats.insert(pf, (tag, page_index))
        return pf

    def _dma_cpu(self, frame: int) -> int:
        """DMA writes are checked as if issued by the frame's home node."""
        node = self.machine.params.node_of_frame(frame)
        return node * self.machine.params.cpus_per_node

    def alloc_frame(self, ctx: Optional[ProcContext] = None,
                    preferred_cell: Optional[int] = None,
                    acceptable_cells: Optional[Set[int]] = None) -> Generator:
        """Allocate a page frame, evicting (with writeback) if needed.

        The ``preferred_cell`` / ``acceptable_cells`` constraint arguments
        are the Section 5.4 page-allocator extension; the local kernel
        ignores them (all frames are its own), Hive cells use them to
        decide when to borrow remotely.
        """
        try:
            return self.pfdats.alloc_frame()
        except NoFreeFrames:
            pass
        evicted = yield from self._evict_one(ctx)
        if evicted is not None:
            return self.pfdats.alloc_frame()
        raise NoFreeFrames(f"kernel {self.kernel_id} out of memory")

    def _evict_one(self, ctx: Optional[ProcContext]) -> Generator:
        """Free one cached page: unreferenced clean first, then dirty,
        then steal a mapped page (unmap everywhere + write back)."""
        candidates = [pf for pf in self.pfdats.hashed_pfdats()
                      if pf.refcount == 0 and not pf.extended
                      and not pf.exported_to and pf.loaned_to is None]
        candidates.sort(key=lambda pf: (pf.dirty, pf.frame))
        for pf in candidates:
            if pf.dirty:
                yield from self.writeback_page(pf, ctx)
            self.pfdats.free_frame(pf)
            return pf
        # Nothing unreferenced: steal a mapped page (never one another
        # process is mid-fault on, i.e. pinned by the current context).
        current_aspace = ctx.process.aspace if ctx is not None else None
        mapped = [pf for pf in self.pfdats.hashed_pfdats()
                  if pf.refcount > 0 and not pf.extended
                  and not pf.exported_to and pf.loaned_to is None]
        mapped.sort(key=lambda pf: (pf.dirty, pf.frame))
        for pf in mapped:
            self._unmap_frame_everywhere(pf.frame)
            if pf.refcount > 0:
                continue  # still referenced by a transient kernel hold
            yield self.sim.timeout(self.costs.tlb_flush_ns)
            if pf.dirty:
                yield from self.writeback_page(pf, ctx)
            self.pfdats.free_frame(pf)
            return pf
        return None

    def _unmap_frame_everywhere(self, frame: int) -> None:
        """Drop every local mapping of a frame (page steal / discard)."""
        for proc in self.processes.values():
            if proc.exited:
                continue
            pmap = proc.aspace.ptes.get(self.kernel_id, {})
            stale = [vpn for vpn, pte in pmap.items()
                     if pte.frame == frame]
            for vpn in stale:
                pte = proc.aspace.unmap_page(self.kernel_id, vpn)
                if pte is not None and pte.pfdat is not None:
                    pte.pfdat.refcount = max(0, pte.pfdat.refcount - 1)

    def writeback_page(self, pf: Pfdat, ctx: Optional[ProcContext] = None) -> Generator:
        """Write one dirty page to its backing store."""
        if not pf.dirty or pf.logical_id is None:
            return None
        tag, idx = pf.logical_id
        if tag[0] == "file":
            _, fs_id, ino = tag
            fs = self.filesystems.get(fs_id)
            if fs is not None:
                inode = fs.inode(ino)
                data = self.machine.memory.read_page(pf.frame)
                if ctx is not None:
                    yield from ctx.block(
                        fs.write_page_to_disk(inode, idx, data))
                else:
                    yield from fs.write_page_to_disk(inode, idx, data)
        # Anonymous (and task-shared) pages go to the swap partition so
        # their contents survive the frame being reused.
        else:
            data = self.machine.memory.read_page(pf.frame)
            if ctx is not None:
                yield from ctx.block(self.swap.swap_out(pf.logical_id,
                                                        data))
            else:
                yield from self.swap.swap_out(pf.logical_id, data)
        pf.dirty = False
        return None

    def sync_all(self, ctx: Optional[ProcContext] = None) -> Generator:
        """Write back every dirty page (used by workload epilogues)."""
        for pf in list(self.pfdats.hashed_pfdats()):
            if pf.dirty and not pf.extended:
                yield from self.writeback_page(pf, ctx)
        return None

    # -- syscall: read / write ---------------------------------------------

    def sys_read(self, ctx: ProcContext, fdnum: int, nbytes: int) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns)
        fd = ctx.process.fd(fdnum)
        if "r" not in fd.mode and "w" != fd.mode:
            raise FileError("EBADF", "fd not open for reading")
        if fd.fs_id not in self.filesystems:
            return (yield from self.read_remote(ctx, fd, nbytes))
        fs, inode = self._fd_inode(fd)
        self._check_generation(fd, inode)
        nbytes = min(nbytes, max(0, inode.size - fd.offset))
        out = bytearray()
        while len(out) < nbytes:
            page_index = fd.offset // PAGE
            page_off = fd.offset % PAGE
            chunk = min(PAGE - page_off, nbytes - len(out))
            pf = yield from self.get_file_page(fs, inode, page_index, ctx)
            yield self.sim.timeout(self._read_page_cost(chunk))
            out += self.machine.memory.read_bytes(
                pf.frame, page_off, chunk, cpu=ctx.cpu)
            fd.offset += chunk
        self.metrics.counter("file.bytes_read").add(nbytes)
        return bytes(out)

    def _read_page_cost(self, chunk: int) -> int:
        return max(1, self.costs.file_read_per_page_ns * chunk // PAGE)

    def _write_page_cost(self, chunk: int) -> int:
        return max(1, self.costs.file_write_per_page_ns * chunk // PAGE)

    def read_remote(self, ctx: ProcContext, fd: FileDescriptor,
                    nbytes: int) -> Generator:
        raise FileError("ESTALE", "remote read needs Hive")
        yield  # pragma: no cover

    def sys_write(self, ctx: ProcContext, fdnum: int, data: bytes) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns)
        fd = ctx.process.fd(fdnum)
        if "w" not in fd.mode:
            raise FileError("EBADF", "fd not open for writing")
        if fd.fs_id not in self.filesystems:
            return (yield from self.write_remote(ctx, fd, data))
        fs, inode = self._fd_inode(fd)
        self._check_generation(fd, inode)
        written = 0
        while written < len(data):
            page_index = fd.offset // PAGE
            page_off = fd.offset % PAGE
            chunk = min(PAGE - page_off, len(data) - written)
            # A full-page overwrite or an extension past EOF needs no
            # read-before-write.
            no_fill = (chunk == PAGE
                       or fd.offset + chunk > inode.size
                       or page_index >= inode.npages)
            pf = yield from self.get_file_page(fs, inode, page_index, ctx,
                                               for_write=True,
                                               no_fill=no_fill)
            yield self.sim.timeout(self._write_page_cost(chunk))
            self.machine.memory.write_bytes(
                pf.frame, page_off, data[written:written + chunk],
                cpu=ctx.cpu)
            pf.dirty = True
            fd.offset += chunk
            written += chunk
            inode.size = max(inode.size, fd.offset)
        self.metrics.counter("file.bytes_written").add(written)
        return written

    def write_remote(self, ctx: ProcContext, fd: FileDescriptor,
                     data: bytes) -> Generator:
        raise FileError("ESTALE", "remote write needs Hive")
        yield  # pragma: no cover

    # -- syscall: mmap -------------------------------------------------------

    def sys_map_file(self, ctx: ProcContext, path: str, writable: bool,
                     shared: bool) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.map_page_ns)
        node = self.fs_node_for(path)
        fs = self.filesystems.get(node)
        if fs is None:
            return (yield from self.map_file_remote(
                ctx, path, writable, shared))
        inode = fs.lookup(path)
        aspace = ctx.process.aspace
        npages = max(1, inode.npages)
        region = Region(aspace.allocate_range(npages), npages,
                        FILE_REGION, writable, shared)
        region.fs_id = fs.fs_id
        region.ino = inode.ino
        region.data_home = self.kernel_id
        region.generation = inode.generation
        self.heap.alloc(region, REGION_TAG)
        aspace.add_region(region)
        return region

    def map_file_remote(self, ctx: ProcContext, path: str, writable: bool,
                        shared: bool) -> Generator:
        raise FileError("ENODEV", f"{path}: remote map needs Hive")
        yield  # pragma: no cover

    def sys_map_anon(self, ctx: ProcContext, npages: int,
                     writable: bool) -> Generator:
        yield self.sim.timeout(self.costs.syscall_overhead_ns
                               + self.costs.map_page_ns)
        proc = ctx.process
        aspace = proc.aspace
        region = Region(aspace.allocate_range(npages), npages,
                        ANON_REGION, writable)
        region.cow_leaf_addr = proc.cow_leaf_addr
        region.cow_leaf_cell = proc.cow_leaf_cell
        self.heap.alloc(region, REGION_TAG)
        aspace.add_region(region)
        return region

    # -- page faults -----------------------------------------------------------

    def sys_touch(self, ctx: ProcContext, region: Region, page_index: int,
                  write: bool) -> Generator:
        """One user-level memory access to ``region[page_index]``."""
        if not 0 <= page_index < region.npages:
            raise BadAddressError(region.start_vpn + page_index)
        if write and not region.writable:
            raise BadAddressError(region.start_vpn + page_index)
        vpn = region.start_vpn + page_index
        aspace = ctx.process.aspace
        pte = aspace.lookup_pte(self.kernel_id, vpn)
        if pte is not None and (pte.writable or not write):
            # TLB/page-table hit: just the memory reference.
            addr = pte.frame * self.machine.params.page_size
            try:
                if write:
                    latency = self.machine.coherence.write(ctx.cpu, addr)
                else:
                    latency = self.machine.coherence.read(ctx.cpu, addr)
            except BusError:
                # The backing frame died (its home node failed).  Remove
                # the mapping and refault so the fault path can recheck.
                aspace.unmap_page(self.kernel_id, vpn)
                self._drop_mapping(pte)
                return (yield from self.sys_touch(
                    ctx, region, page_index, write))
            yield self.sim.timeout(latency)
            return pte
        pte = yield from self.fault_page(ctx, region, vpn, write)
        return pte

    def sys_touch_many(self, ctx: ProcContext, region: Region,
                       start_index: int, count: Optional[int],
                       write: bool) -> Generator:
        """Touch ``count`` consecutive pages starting at ``start_index``.

        When every page is already mapped with sufficient permission and
        the machine is healthy, the references issue as one batched
        coherence access charged a single summed timeout; any missing
        mapping, permission upgrade, fault-state node, or out-of-range
        index falls back to the page-by-page :meth:`sys_touch` path
        (faults, refaults, and error positions behave exactly as a
        caller loop would).  Returns the page-table entries touched.
        """
        if count is None:
            count = region.npages - start_index
        count = int(count)
        if count <= 0:
            return []
        params = self.machine.params
        fast = (not self.machine.memory._any_faults
                and 0 <= start_index
                and start_index + count <= region.npages
                and (region.writable or not write))
        ptes: List[Pte] = []
        if fast:
            aspace = ctx.process.aspace
            base = region.start_vpn
            kernel_id = self.kernel_id
            for idx in range(start_index, start_index + count):
                pte = aspace.lookup_pte(kernel_id, base + idx)
                if pte is None or (write and not pte.writable):
                    fast = False
                    break
                ptes.append(pte)
        if not fast:
            out = []
            for idx in range(start_index, start_index + count):
                out.append((yield from self.sys_touch(
                    ctx, region, idx, write)))
            return out
        lines_per_page = params.page_size // params.cache_line_size
        lines = [pte.frame * lines_per_page for pte in ptes]
        ops = [1] * count if write else [0] * count
        # A healthy machine cannot bus-error here (checked above, and no
        # yield separates the check from the access); a firewall
        # rejection propagates exactly as the sys_touch loop's would.
        latency = self.machine.coherence.access_batch(ctx.cpu, lines, ops)
        yield self.sim.timeout(latency)
        return ptes

    def fault_page(self, ctx: ProcContext, region: Region, vpn: int,
                   write: bool) -> Generator:
        """The page-fault path (local kernel: everything is local)."""
        self.metrics.counter("faults").add()
        yield self.sim.timeout(self.costs.local_fault_ns)
        if region.kind == FILE_REGION:
            pte = yield from self._fault_file_local(ctx, region, vpn, write)
        else:
            pte = yield from self._fault_anon(ctx, region, vpn, write)
        return pte

    def _fault_file_local(self, ctx: ProcContext, region: Region, vpn: int,
                          write: bool) -> Generator:
        fs = self.filesystems[region.fs_id]
        inode = fs.inode(region.ino)
        if region.generation != inode.generation:
            raise StaleGenerationError(inode.path, region.generation,
                                       inode.generation)
        pf = yield from self.get_file_page(
            fs, inode, region.file_page_index(vpn), ctx, for_write=write)
        if write:
            pf.dirty = True
        return self._map(ctx, region, vpn, pf, write,
                         data_home=self.kernel_id)

    def _get_anon_page(self, logical_id: tuple,
                       ctx: Optional[ProcContext] = None) -> Generator:
        """Find-or-restore one anonymous page.

        Checks the page cache, then swap (the page may have been evicted
        by the clock hand), and finally zero-fills.  Returns the pfdat.
        """
        pf = self.pfdats.lookup(logical_id)
        if pf is not None:
            return pf
        pf = yield from self.alloc_frame(ctx)
        if self.swap.has(logical_id):
            if ctx is not None:
                data = yield from ctx.block(self.swap.swap_in(logical_id))
            else:
                data = yield from self.swap.swap_in(logical_id)
            self.machine.memory.write_page(pf.frame, data,
                                           cpu=self._dma_cpu(pf.frame))
        else:
            yield self.sim.timeout(self.costs.page_zero_ns)
            self.machine.memory.zero_page(pf.frame,
                                          cpu=self._dma_cpu(pf.frame))
        self.pfdats.insert(pf, logical_id)
        return pf

    def _resolve_local_cow(self, addr: int) -> Optional[CowNode]:
        resolved = self.heap.resolve(addr)
        if resolved is None or resolved[0] != "cownode":
            return None
        return resolved[1]

    def _fault_anon(self, ctx: ProcContext, region: Region, vpn: int,
                    write: bool) -> Generator:
        self.publish_phase("cow_search")
        page_index = vpn - region.start_vpn
        leaf = self._resolve_local_cow(region.cow_leaf_addr)
        if leaf is None:
            self.panic(
                f"corrupt COW leaf pointer {region.cow_leaf_addr:#x} in "
                f"address map of pid {ctx.process.pid}"
            )
            raise ProcessKilled(ctx.process.pid, "cell panic")
        owner = None
        for node in self.cow.local_ancestry(leaf):
            yield self.sim.timeout(self.costs.cow_tree_hop_ns)
            if page_index in node.pages:
                owner = node
                break
        if owner is None:
            # First touch: zero-fill at the leaf.
            pf = yield from self._get_anon_page(
                (leaf.anon_tag(), page_index), ctx)
            self.cow.record_page(leaf, page_index)
            pf.dirty = True
            return self._map(ctx, region, vpn, pf, region.writable,
                             data_home=self.kernel_id)
        # Page recorded at an ancestor: in cache, or swapped out by the
        # clock hand, or (never-written corner) zero.
        src = yield from self._get_anon_page(
            (owner.anon_tag(), page_index), ctx)
        if write and owner is not leaf:
            # Copy-on-write break: private copy recorded at the leaf.
            pf = yield from self.alloc_frame(ctx)
            yield self.sim.timeout(self.costs.page_copy_ns)
            data = self.machine.memory.read_page(src.frame, cpu=ctx.cpu)
            self.machine.memory.write_page(pf.frame, data,
                                           cpu=self._dma_cpu(pf.frame))
            self.cow.record_page(leaf, page_index)
            self.pfdats.insert(pf, (leaf.anon_tag(), page_index))
            pf.dirty = True
            return self._map(ctx, region, vpn, pf, True,
                             data_home=self.kernel_id)
        if write:
            src.dirty = True
        return self._map(ctx, region, vpn, src, write,
                         data_home=self.kernel_id)

    def _map(self, ctx: ProcContext, region: Region, vpn: int, pf: Pfdat,
             writable: bool, data_home: int) -> Pte:
        pte = Pte(frame=pf.frame, writable=writable, pfdat=pf,
                  data_home=data_home)
        existing = ctx.process.aspace.lookup_pte(self.kernel_id, vpn)
        if existing is not None:
            self._drop_mapping(existing)
        ctx.process.aspace.map_page(self.kernel_id, vpn, pte)
        pf.refcount += 1
        return pte

    # -- introspection -----------------------------------------------------

    def warm_file(self, path: str) -> Generator:
        """Pull a whole file into the page cache (benchmark warm-up)."""
        fs = self.local_fs_for(path)
        if fs is None:
            raise FileError("ENODEV", f"{path} is not local")
        inode = fs.lookup(path)
        for idx in range(inode.npages):
            yield from self.get_file_page(fs, inode, idx)
        return None

    def live_process_count(self) -> int:
        return sum(1 for p in self.processes.values() if not p.exited)
