"""Kernel-level error types."""

from __future__ import annotations


class KernelError(Exception):
    """Base class for OS-level errors."""


class KernelPanic(KernelError):
    """A kernel detected internal corruption and shut itself down.

    "Cells normally panic (shut themselves down) if they detect such
    hardware exceptions during kernel execution, because this indicates
    internal kernel corruption" (Section 4.1).
    """

    def __init__(self, cell_id: int, reason: str):
        super().__init__(f"cell {cell_id} panic: {reason}")
        self.cell_id = cell_id
        self.reason = reason


class FileError(KernelError):
    """An errno-style file system failure."""

    def __init__(self, errno: str, message: str):
        super().__init__(f"[{errno}] {message}")
        self.errno = errno


class StaleGenerationError(FileError):
    """Access through a descriptor whose file generation is stale.

    Raised after a cell failure discarded dirty pages of a file that this
    descriptor had open: "Only processes that opened the file before the
    failure will receive I/O errors" (Section 4.2).
    """

    def __init__(self, path: str, opened_gen: int, current_gen: int):
        super().__init__(
            "EIO",
            f"{path}: opened at generation {opened_gen}, file now at "
            f"{current_gen} after dirty-page discard",
        )
        self.path = path
        self.opened_gen = opened_gen
        self.current_gen = current_gen


class BadAddressError(KernelError):
    """A virtual address did not resolve in the faulting address space."""

    def __init__(self, vpn: int):
        super().__init__(f"segmentation violation at virtual page {vpn}")
        self.vpn = vpn


class ProcessKilled(KernelError):
    """Delivered into a thread whose process was killed (cell failure,
    signal, or resource revocation)."""

    def __init__(self, pid: int, reason: str):
        super().__init__(f"process {pid} killed: {reason}")
        self.pid = pid
        self.reason = reason


class CellFailedError(KernelError):
    """An intercell operation observed that the peer cell has failed."""

    def __init__(self, cell_id: int, detail: str = ""):
        super().__init__(f"cell {cell_id} failed {detail}".rstrip())
        self.cell_id = cell_id


class RpcTimeout(CellFailedError):
    """An RPC to another cell timed out — a failure *hint* (Section 4.3)."""

    def __init__(self, cell_id: int, op: str):
        super().__init__(cell_id, f"(RPC {op!r} timed out)")
        self.op = op


class CarefulReferenceFault(KernelError):
    """A careful-reference check failed while reading a remote cell.

    Carries which check tripped; a failed check is a failure hint for the
    remote cell, not an error in the reading cell.
    """

    def __init__(self, remote_cell: int, check: str, detail: str = ""):
        super().__init__(
            f"careful reference to cell {remote_cell} failed {check} check"
            + (f": {detail}" if detail else "")
        )
        self.remote_cell = remote_cell
        self.check = check
