"""Processes, threads, file descriptors, process groups, and signals.

The process abstraction follows SVR4: a process has an address space, a
file-descriptor table, a parent, a process group, and one or more threads
(sprocs, in IRIX terms).  Hive extends the abstraction across cells
(Section 3.2): a *spanning task* groups component processes on several
cells that share one address space; sequential processes can migrate.
The cross-cell machinery lives in :mod:`repro.core`; this module provides
the per-cell state it composes.

Signals are delivered at syscall boundaries (the classic UNIX model);
SIGKILL additionally interrupts a blocked thread immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.unix.address_space import AddressSpace
from repro.unix.errors import ProcessKilled
from repro.unix.kheap import KObject

SIGKILL = 9
SIGTERM = 15
SIGCHLD = 18
SIGUSR1 = 16


@dataclass
class FileDescriptor:
    """An open file handle.

    ``generation`` is copied from the file at open time; a mismatch after
    a discard produces :class:`~repro.unix.errors.StaleGenerationError`
    (Section 4.2).  ``imported_pfdats`` tracks remote pages imported on
    behalf of this descriptor's read()/write() traffic; they are released
    (and any write grants revoked) when the descriptor closes.
    """

    fd: int
    fs_id: int
    ino: int
    data_home: int
    mode: str            # "r", "w", or "rw"
    offset: int = 0
    generation: int = 0
    imported_pfdats: List[Any] = field(default_factory=list)


PROC_TAG = "proc"


class Process(KObject):
    """One process, resident on one cell."""

    def __init__(self, pid: int, cell_id: int, aspace: AddressSpace,
                 name: str = "proc", parent: Optional["Process"] = None):
        super().__init__()
        self.pid = pid
        self.cell_id = cell_id
        self.name = name
        self.aspace = aspace
        self.parent = parent
        self.children: List[Process] = []
        self.pgid = parent.pgid if parent else pid
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0/1/2 reserved for std streams
        self.threads: List["Thread"] = []
        self.exited = False
        self.exit_status: Optional[int] = None
        self.zombie = False
        self.pending_signals: List[int] = []
        #: spanning-task id if this is a component of one, else None
        self.task_id: Optional[int] = None
        #: cow leaf address for the anonymous regions created by this
        #: process (mirrors the leaf recorded in its anon regions).
        self.cow_leaf_addr = 0
        self.cow_leaf_cell = cell_id
        #: set of (cell_id) this process has page dependencies on;
        #: maintained by the sharing layer for the Section 5.6 analysis.
        self.dependencies: Set[int] = {cell_id}

    # -- file descriptors ---------------------------------------------

    def install_fd(self, fs_id: int, ino: int, data_home: int, mode: str,
                   generation: int) -> FileDescriptor:
        fd = FileDescriptor(
            fd=self._next_fd, fs_id=fs_id, ino=ino, data_home=data_home,
            mode=mode, generation=generation,
        )
        self._next_fd += 1
        self.fds[fd.fd] = fd
        return fd

    def fd(self, fdnum: int) -> FileDescriptor:
        fd = self.fds.get(fdnum)
        if fd is None:
            raise KeyError(f"bad file descriptor {fdnum} in pid {self.pid}")
        return fd

    def close_fd(self, fdnum: int) -> FileDescriptor:
        return self.fds.pop(fdnum)

    # -- signals ----------------------------------------------------------

    def post_signal(self, sig: int) -> None:
        self.pending_signals.append(sig)
        if sig == SIGKILL:
            for thread in list(self.threads):
                thread.kill(f"SIGKILL to pid {self.pid}")

    def take_pending_signal(self) -> Optional[int]:
        if self.pending_signals:
            return self.pending_signals.pop(0)
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process pid={self.pid} {self.name!r} cell={self.cell_id}>"


class Thread:
    """One thread of control, executed as a simulation coroutine."""

    _next_tid = 1

    def __init__(self, process: Process, name: str = ""):
        self.tid = Thread._next_tid
        Thread._next_tid += 1
        self.process = process
        self.name = name or f"{process.name}.t{self.tid}"
        process.threads.append(self)
        #: the repro.sim Process driving this thread (set by the kernel)
        self.sim_process = None
        #: current CPU while running, else None
        self.cpu: Optional[int] = None
        self.killed = False
        self.kill_reason = ""

    def kill(self, reason: str) -> None:
        """Terminate the thread, interrupting it if blocked."""
        if self.killed:
            return
        self.killed = True
        self.kill_reason = reason
        if self.sim_process is not None and self.sim_process.is_alive:
            self.sim_process.interrupt(
                ProcessKilled(self.process.pid, reason)
            )

    def check_killed(self) -> None:
        if self.killed:
            raise ProcessKilled(self.process.pid, self.kill_reason)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Thread {self.name} pid={self.process.pid}>"
