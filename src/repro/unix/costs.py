"""Kernel operation cost model, calibrated to the paper's measurements.

The reproduction executes kernel *logic* (data-structure manipulation) for
real, but charges *time* for each operation from this table, because we do
not simulate MIPS instructions.  Every constant is annotated with the paper
measurement it composes into; the benchmark suite asserts that composed
latencies land on the published numbers.

Key published anchors:

=====================================  ==========  =======================
operation                              paper       source
=====================================  ==========  =======================
local page fault, hit in file cache    6.9 us      Tables 5.2 / 7.3
remote page fault, hit at data home    50.7 us     Table 5.2 (breakdown)
null interrupt-level RPC               7.2 us      Section 6
typical interrupt-level RPC overhead   9.6 us      Section 6
null queued RPC                        34 us       Section 6
careful_on..careful_off clock read     1.16 us     Section 4.1
open, local                            148 us      Table 7.3
open, remote                           580 us      Table 7.3
4 MB file read, local / remote         65 / 76.2 ms  Table 7.3
4 MB file write/extend, local/remote   83.7 / 87.3 ms  Table 7.3
RPC client spin-wait timeout           50 us       Section 6
=====================================  ==========  =======================

All values are integer nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.params import NS_PER_MS, NS_PER_US


@dataclass
class KernelCosts:
    """Charged latencies for kernel code paths."""

    # -- generic kernel entry ------------------------------------------
    syscall_overhead_ns: int = 2 * NS_PER_US      # trap + dispatch + return
    context_switch_ns: int = 10 * NS_PER_US       # full switch incl. sync
    tlb_miss_ns: int = 300                         # software-refill uTLB miss
    tlb_flush_ns: int = 5 * NS_PER_US              # whole-TLB flush
    scheduler_quantum_ns: int = 10 * NS_PER_MS     # 100 Hz time slice
    clock_tick_ns: int = 10 * NS_PER_MS            # clock interrupt period
    clock_handler_ns: int = 3 * NS_PER_US          # tick bookkeeping

    # -- page fault path (Table 5.2) --------------------------------------
    #: the local fault path minus the separately-charged hash lookup:
    #: trap, map, return.  local fault total = this + pfdat hash = 6.9 us.
    local_fault_ns: int = 6_200
    #: client-cell components of the remote fault (Table 5.2: 28.0 us
    #: including the hash lookup charged separately; the 8.7 us "misc VM"
    #: row therefore carries 8.0 us here).
    fault_client_fs_ns: int = 9_000
    fault_client_locking_ns: int = 5_500
    fault_client_misc_vm_ns: int = 8_000
    fault_client_import_ns: int = 4_800
    #: data-home components (Table 5.2: 5.4 us).
    fault_home_misc_vm_ns: int = 3_400
    fault_home_export_ns: int = 2_000

    # -- RPC (Section 6 and Table 5.2's RPC block) -------------------------
    #: stub marshalling for a *null* RPC, split client/server so the total
    #: null RPC lands on 7.2 us: hw round trip 2x(700+300)=2.0 us + client
    #: interrupt dispatch + stubs.
    rpc_null_stub_ns: int = 2_100
    #: interrupt dispatch overhead at each end of a message.
    rpc_interrupt_dispatch_ns: int = 1_550
    #: stub execution for a typical (argument-carrying) RPC: Table 5.2
    #: charges 4.9 us for "stubs and RPC subsystem".
    rpc_stub_ns: int = 4_900
    #: copying args/results beyond 128 bytes through shared memory (4.0 us)
    rpc_copy_ns: int = 3_900
    #: allocating/freeing argument and result memory (3.7 us)
    rpc_alloc_ns: int = 3_400
    #: client spins for the reply this long before context switching.
    rpc_spin_timeout_ns: int = 50 * NS_PER_US
    #: RPC send timeout for failure hints (derived; must exceed any valid
    #: queued service including disk I/O under load).
    rpc_timeout_ns: int = 250 * NS_PER_MS
    #: queued RPC adds server-process wakeup + sync: null queued RPC is
    #: 34 us end to end = null 7.2 us + this.
    rpc_queue_extra_ns: int = 26_800

    # -- careful reference protocol (Section 4.1) --------------------------
    #: careful_on: capture stack frame + record target cell; plus checks
    #: and careful_off.  Total software cost 1.16 us - 0.7 us cache miss.
    careful_on_ns: int = 260
    careful_check_ns: int = 60      # per pointer/alignment/range check
    careful_copy_ns_per_word: int = 10
    careful_off_ns: int = 200

    # -- file system (Table 7.3 anchors) ------------------------------------
    #: path lookup + vnode setup + fd allocation for a local open (148 us).
    open_local_ns: int = 146 * NS_PER_US
    #: extra client-side work for a remote open beyond the queued RPC and
    #: the server-side open: shadow-vnode setup, credential marshalling,
    #: and server scheduling delay.  Lands remote open on 580 us.
    open_remote_extra_ns: int = 378 * NS_PER_US
    close_ns: int = 20 * NS_PER_US
    unlink_ns: int = 120 * NS_PER_US
    #: per-page cost of read(): page-cache lookup plus 4 KB copyout
    #: (65 ms / 1024 pages for the 4 MB warm read).
    file_read_per_page_ns: int = 63_477
    #: per-page extra on the remote bulk-read path (76.2 ms for 4 MB):
    #: the client FS batches imports, amortizing the RPC across pages.
    file_read_remote_extra_ns: int = 7_400
    #: per-page cost of write()/extend: allocation + copyin + dirtying
    #: (83.7 ms / 1024 pages).
    file_write_per_page_ns: int = 81_000
    #: remote write extends at the data home; extra per page (87.3 ms).
    file_write_remote_extra_ns: int = 400
    #: creating a file / directory entry.
    create_ns: int = 160 * NS_PER_US

    # -- process management --------------------------------------------------
    fork_ns: int = 700 * NS_PER_US          # IRIX-era fork of modest process
    exec_ns: int = 900 * NS_PER_US
    exit_ns: int = 300 * NS_PER_US
    wait_ns: int = 30 * NS_PER_US
    signal_deliver_ns: int = 25 * NS_PER_US
    #: extra work to fork across a cell boundary (marshal + queued RPC
    #: handled separately by the RPC layer).
    remote_fork_extra_ns: int = 400 * NS_PER_US

    # -- VM bookkeeping -------------------------------------------------------
    page_zero_ns: int = 20 * NS_PER_US      # zeroing a 4 KB frame
    page_copy_ns: int = 25 * NS_PER_US      # COW copy of a 4 KB frame
    map_page_ns: int = 1_500                # insert one PTE
    unmap_page_ns: int = 1_800
    cow_tree_hop_ns: int = 800              # walk one COW tree level
    pfdat_hash_lookup_ns: int = 700

    # -- recovery (Section 4.3) -----------------------------------------------
    barrier_round_ns: int = 50 * NS_PER_US     # one global-barrier round
    discard_per_page_ns: int = 2_000           # invalidate + free one page
    #: examining one pfdat during the recovery sweeps (the VM cleanup
    #: scans every page frame twice: once detecting pages writable by
    #: failed cells, once revoking grants).  Sized so a 32 MB cell's
    #: recovery lands in the paper's measured 40-80 ms band.
    recovery_scan_per_pfdat_ns: int = 2_600
    recovery_fixed_ns: int = 5 * NS_PER_MS     # cleanup of dangling refs
    reboot_ns: int = 2_000 * NS_PER_MS         # cell reboot after diagnostics
    diagnostics_ns: int = 500 * NS_PER_MS      # recovery-master hw diagnostics

    def validate(self) -> "KernelCosts":
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"negative cost {name}")
        return self


DEFAULT_COSTS = KernelCosts()
