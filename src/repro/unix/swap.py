"""Swap space and the page-replacement (clock hand) daemon.

Two of the per-cell policy modules Wax drives (Table 3.4) live here:

* the **virtual memory clock hand** — a kernel daemon that keeps a
  reserve of free frames by evicting unreferenced pages: clean file
  pages are dropped, dirty file pages written back, and anonymous pages
  swapped out to the swap partition;
* the **swapper** backing store — a slot allocator on the local disk for
  anonymous pages, from which faults swap pages back in.

Section 5.7: Wax "will direct the virtual memory clock hand process
running on each cell to preferentially free pages whose memory home is
under memory pressure" — the daemon consults a preferred-source hook
that Hive cells wire to Wax's ``clockhand_target`` hint, returning
borrowed frames (and releasing imports) from the pressured cell first.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.unix.fs import PAGE


class SwapSpace:
    """Anonymous-page backing store on a local disk.

    Slots are disk blocks past the file system's region; contents are
    kept per-slot like the file platter so swapped data survives frame
    reuse (but not node failure — anonymous data has no remote copies).
    """

    #: first disk block used for swap (leaves room for the file system)
    BASE_BLOCK = 1_000_000

    def __init__(self, sim, disk):
        self.sim = sim
        self.disk = disk
        self._slots: Dict[tuple, int] = {}       # logical id -> block
        self._data: Dict[int, bytes] = {}
        self._next_block = self.BASE_BLOCK
        self._free_blocks: List[int] = []
        self.swap_outs = 0
        self.swap_ins = 0

    def has(self, logical_id: tuple) -> bool:
        return logical_id in self._slots

    def _alloc_block(self) -> int:
        if self._free_blocks:
            return self._free_blocks.pop()
        block = self._next_block
        self._next_block += PAGE // 512
        return block

    def swap_out(self, logical_id: tuple, data: bytes) -> Generator:
        """Write one anonymous page to swap (a disk write)."""
        if len(data) != PAGE:
            raise ValueError("swap writes whole pages")
        block = self._slots.get(logical_id)
        if block is None:
            block = self._alloc_block()
            self._slots[logical_id] = block
        yield from self.disk.write(block, PAGE)
        self._data[block] = bytes(data)
        self.swap_outs += 1
        return None

    def swap_in(self, logical_id: tuple) -> Generator:
        """Read one anonymous page back; returns its bytes."""
        block = self._slots.get(logical_id)
        if block is None:
            raise KeyError(f"{logical_id} not in swap")
        yield from self.disk.read(block, PAGE)
        self.swap_ins += 1
        return self._data[block]

    def discard(self, logical_id: tuple) -> None:
        """Free a slot (process exit or page discard)."""
        block = self._slots.pop(logical_id, None)
        if block is not None:
            self._data.pop(block, None)
            self._free_blocks.append(block)

    @property
    def slots_used(self) -> int:
        return len(self._slots)


class ClockHand:
    """The page-replacement daemon for one kernel."""

    def __init__(self, kernel, low_watermark: int = 128,
                 target_free: int = 256,
                 period_ns: int = 100_000_000):
        self.kernel = kernel
        self.low_watermark = low_watermark
        self.target_free = target_free
        self.period_ns = period_ns
        self.passes = 0
        self.freed_clean = 0
        self.freed_dirty = 0
        self.freed_anon = 0
        self.returned_borrowed = 0
        self._hand = 0
        self._proc = kernel.sim.process(self._loop(),
                                        name=f"k{kernel.kernel_id}.clockhand")

    # -- the daemon loop ---------------------------------------------------

    def _loop(self) -> Generator:
        sim = self.kernel.sim
        while True:
            yield sim.timeout(self.period_ns)
            if not self.kernel.alive:
                return
            if self.kernel.pfdats.free_count >= self.low_watermark:
                continue
            yield from self.run_pass()

    def run_pass(self) -> Generator:
        """One sweep: free pages until the target reserve is met."""
        self.passes += 1
        kernel = self.kernel
        # Preferred source first (Wax's clockhand_target): give back
        # memory belonging to the pressured cell.
        preferred = kernel.clockhand_preferred_source()
        if preferred is not None:
            yield from self._release_foreign(preferred)
        candidates = [pf for pf in kernel.pfdats.hashed_pfdats()
                      if pf.refcount == 0 and not pf.extended
                      and not pf.exported_to and pf.loaned_to is None]
        # Clock order: resume the sweep where the hand stopped.
        candidates.sort(key=lambda pf: pf.frame)
        start = 0
        for i, pf in enumerate(candidates):
            if pf.frame >= self._hand:
                start = i
                break
        ordered = candidates[start:] + candidates[:start]
        for pf in ordered:
            if kernel.pfdats.free_count >= self.target_free:
                break
            self._hand = pf.frame + 1
            yield from self._evict(pf)
        return None

    def _evict(self, pf) -> Generator:
        kernel = self.kernel
        logical_id = pf.logical_id
        if logical_id is None:
            return None
        tag = logical_id[0]
        if pf.dirty and tag[0] == "file":
            yield from kernel.writeback_page(pf)
            self.freed_dirty += 1
        elif tag[0] in ("anon", "task"):
            # Swap the anonymous page out before dropping the frame.
            data = kernel.machine.memory.read_page(pf.frame)
            yield from kernel.swap.swap_out(logical_id, data)
            self.freed_anon += 1
        else:
            self.freed_clean += 1
        if pf.refcount == 0 and pf.logical_id is not None:
            kernel.pfdats.free_frame(pf)
        return None

    def _release_foreign(self, source_cell: int) -> Generator:
        """Return borrowed frames / release imports from a pressured cell."""
        kernel = self.kernel
        released = 0
        # Unused borrowed stock first (these also appear in the frame
        # registry, so drop them from the free list before returning).
        borrowed_free = getattr(kernel, "_borrowed_free", None)
        if borrowed_free:
            keep = []
            for pf in borrowed_free:
                if pf.borrowed_from == source_cell and released < 64:
                    kernel.return_borrowed_frame(pf)
                    released += 1
                else:
                    keep.append(pf)
            kernel._borrowed_free = keep
        for pf in list(kernel.pfdats.all_pfdats()):
            if not pf.extended or released >= 64:
                continue
            if pf.borrowed_from == source_cell and pf.refcount == 0 \
                    and pf.logical_id is None:
                kernel.return_borrowed_frame(pf)
                released += 1
            elif pf.imported_from == source_cell and pf.refcount == 0:
                kernel.release_imported_page(pf)
                released += 1
        self.returned_borrowed += released
        if released:
            yield kernel.sim.timeout(
                released * kernel.costs.unmap_page_ns)
        return None
