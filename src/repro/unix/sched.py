"""Per-kernel CPU scheduler.

Each kernel schedules threads onto the processors of the nodes it owns.
The model is cooperative with quantum-based round-robin: a running thread
holds a specific CPU (identity matters — the firewall checks the writing
processor), charges simulated time while computing, and yields the CPU at
quantum boundaries when other threads are waiting, or whenever it blocks
on I/O or a queued RPC.

Gang scheduling / space sharing (a Wax-driven policy, Table 3.4) is
supported through CPU reservations: a set of CPUs can be granted
exclusively to one process.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Set

from repro.sim.engine import Event, Simulator
from repro.unix.costs import KernelCosts


class Scheduler:
    """FIFO run queue over a fixed set of CPU ids."""

    def __init__(self, sim: Simulator, cpu_ids: List[int],
                 costs: KernelCosts, name: str = "sched"):
        if not cpu_ids:
            raise ValueError("scheduler needs at least one CPU")
        self.sim = sim
        self.costs = costs
        self.name = name
        self.cpu_ids = list(cpu_ids)
        self._free: Deque[int] = deque(cpu_ids)
        self._waiters: Deque[tuple] = deque()  # (event, reserved_for_pid)
        #: pid -> CPUs reserved exclusively for it (space sharing)
        self._reservations: Dict[int, Set[int]] = {}
        self._reserved_cpus: Set[int] = set()
        self.context_switches = 0
        self.halted = False

    # -- reservations (space sharing) -----------------------------------

    def reserve_cpus(self, pid: int, cpus: Set[int]) -> None:
        """Grant ``cpus`` exclusively to process ``pid`` (Wax policy)."""
        bad = cpus - set(self.cpu_ids)
        if bad:
            raise ValueError(f"cannot reserve foreign CPUs {bad}")
        self._reservations[pid] = set(cpus)
        self._reserved_cpus |= cpus

    def release_reservation(self, pid: int) -> None:
        cpus = self._reservations.pop(pid, set())
        self._reserved_cpus -= cpus
        self._grant_waiters()

    def _cpu_usable_by(self, cpu: int, pid: Optional[int]) -> bool:
        if cpu not in self._reserved_cpus:
            return True
        if pid is None:
            return False
        return cpu in self._reservations.get(pid, set())

    # -- acquire / release -------------------------------------------------

    def try_acquire(self, pid: Optional[int] = None) -> Optional[int]:
        for _ in range(len(self._free)):
            cpu = self._free.popleft()
            if self._cpu_usable_by(cpu, pid):
                return cpu
            self._free.append(cpu)
        return None

    def acquire(self, pid: Optional[int] = None) -> Event:
        """Event that grants one CPU id."""
        ev = self.sim.event(f"{self.name}.cpu")
        cpu = self.try_acquire(pid)
        if cpu is not None:
            ev.succeed(cpu)
        else:
            self._waiters.append((ev, pid))
        return ev

    def release(self, cpu: int) -> None:
        if cpu not in self.cpu_ids:
            raise ValueError(f"cpu {cpu} does not belong to {self.name}")
        self._free.append(cpu)
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        granted = True
        while granted and self._waiters and self._free:
            granted = False
            for i in range(len(self._waiters)):
                ev, pid = self._waiters[i]
                cpu = self.try_acquire(pid)
                if cpu is not None:
                    del self._waiters[i]
                    if ev.triggered:
                        # Waiter was interrupted (killed); recycle CPU.
                        self._free.append(cpu)
                    else:
                        ev.succeed(cpu)
                    granted = True
                    break

    def remove_cpu(self, cpu: int) -> None:
        """A CPU's node failed; never hand it out again."""
        if cpu in self._free:
            self._free.remove(cpu)
        if cpu in self.cpu_ids:
            self.cpu_ids.remove(cpu)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    @property
    def free_count(self) -> int:
        return len(self._free)
