"""Vnode file system with an on-disk block store and generation numbers.

The structure follows the IRIX design the paper describes (Section 5.1):
the virtual memory system consults the pfdat hash table first, and on a
miss invokes "the read operation of the vnode object provided by the file
system to represent that file.  The file system allocates a page frame,
fills it with the requested data, and inserts it in the pfdat hash table."

Generation numbers implement the relaxed error semantics of Section 4.2:
"a generation number, maintained by the file system, ... is copied into
the file descriptor or address space map of a process when it opens the
file.  When a dirty page of a file is discarded, the file's generation
number is incremented.  An access via a file descriptor or address space
region with a mismatched generation number generates an error."

The on-disk store holds real bytes, so after a discard a re-opened file
reads *stale but uncorrupted* data from disk — exactly the paper's
crash-equivalent semantics — and the evaluation harness can diff workload
output files against reference copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.hardware.disk import Disk
from repro.unix.errors import FileError
from repro.unix.kheap import KObject

PAGE = 4096


@dataclass
class Inode:
    """On-disk file metadata."""

    ino: int
    path: str
    is_dir: bool = False
    size: int = 0
    #: logical page index -> disk block number (allocated lazily)
    blocks: Dict[int, int] = field(default_factory=dict)
    #: incremented whenever a dirty page of the file is discarded
    generation: int = 0
    nlink: int = 1

    @property
    def npages(self) -> int:
        return (self.size + PAGE - 1) // PAGE


class Vnode(KObject):
    """In-memory handle for an open file.

    In Hive a *shadow vnode* (a Vnode whose ``data_home`` differs from the
    local cell) "indicates that the file is remote.  The file system uses
    information stored in the vnode to determine the data home for the
    file and the vnode tag on the data home" (Section 5.2).
    """

    __slots__ = ("fs_id", "ino", "data_home", "refcount")

    def __init__(self, fs_id: int, ino: int, data_home: int):
        super().__init__()
        self.fs_id = fs_id
        self.ino = ino
        self.data_home = data_home
        self.refcount = 0

    def file_tag(self) -> tuple:
        """The pfdat logical-id tag for this file's pages."""
        return ("file", self.fs_id, self.ino)


class DiskFileSystem:
    """One local file system on one disk.

    The *platter* is a dict of block number -> page bytes; blocks are
    allocated by a bump allocator.  Directory structure is a sorted path
    namespace with implicit parents (enough for the paper's workloads,
    which use a handful of directories such as ``/tmp``).
    """

    def __init__(self, sim, fs_id: int, disk: Disk, home_cell: int):
        self.sim = sim
        self.fs_id = fs_id
        self.disk = disk
        self.home_cell = home_cell
        self._inodes: Dict[int, Inode] = {}
        self._namespace: Dict[str, int] = {}
        self._next_ino = 2
        self._next_block = 16            # leave room for a superblock
        self._platter: Dict[int, bytes] = {}
        self.disk_reads = 0
        self.disk_writes = 0
        self._make_root()

    def _make_root(self) -> None:
        root = Inode(ino=1, path="/", is_dir=True)
        self._inodes[1] = root
        self._namespace["/"] = 1

    # -- namespace -------------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise FileError("EINVAL", f"path must be absolute: {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        if len(path) > 1 and path.endswith("/"):
            path = path[:-1]
        return path

    def lookup(self, path: str) -> Inode:
        path = self._normalize(path)
        ino = self._namespace.get(path)
        if ino is None:
            raise FileError("ENOENT", f"no such file: {path}")
        return self._inodes[ino]

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._namespace

    def create(self, path: str, is_dir: bool = False) -> Inode:
        path = self._normalize(path)
        if path in self._namespace:
            raise FileError("EEXIST", f"exists: {path}")
        # Implicit mkdir -p of parents.
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._namespace:
            self.create(parent, is_dir=True)
        elif not self._inodes[self._namespace[parent]].is_dir:
            raise FileError("ENOTDIR", f"{parent} is not a directory")
        inode = Inode(ino=self._next_ino, path=path, is_dir=is_dir)
        self._next_ino += 1
        self._inodes[inode.ino] = inode
        self._namespace[path] = inode.ino
        return inode

    def unlink(self, path: str) -> Inode:
        path = self._normalize(path)
        inode = self.lookup(path)
        if inode.is_dir:
            children = [p for p in self._namespace
                        if p != path and p.startswith(path.rstrip("/") + "/")]
            if children:
                raise FileError("ENOTEMPTY", f"{path} is not empty")
        del self._namespace[path]
        inode.nlink -= 1
        if inode.nlink == 0:
            for block in inode.blocks.values():
                self._platter.pop(block, None)
            del self._inodes[inode.ino]
        return inode

    def listdir(self, path: str) -> List[str]:
        path = self._normalize(path)
        self.lookup(path)
        prefix = path.rstrip("/") + "/"
        out = []
        for p in self._namespace:
            if p.startswith(prefix) and "/" not in p[len(prefix):]:
                out.append(p)
        return sorted(out)

    def inode(self, ino: int) -> Inode:
        inode = self._inodes.get(ino)
        if inode is None:
            raise FileError("ESTALE", f"stale inode {ino}")
        return inode

    # -- block I/O -----------------------------------------------------------
    #
    # These are coroutines: they charge real (simulated) disk latency.

    def _block_for(self, inode: Inode, page_index: int) -> int:
        block = inode.blocks.get(page_index)
        if block is None:
            block = self._next_block
            self._next_block += 8  # pages are 8 disk sectors
            inode.blocks[page_index] = block
        return block

    def read_page_from_disk(self, inode: Inode,
                            page_index: int) -> Generator:
        """Read one file page from the platter; returns the bytes."""
        block = self._block_for(inode, page_index)
        yield from self.disk.read(block, PAGE)
        self.disk_reads += 1
        return self._platter.get(block, b"\x00" * PAGE)

    def write_page_to_disk(self, inode: Inode, page_index: int,
                           data: bytes) -> Generator:
        """Write one file page to the platter (stable storage)."""
        if len(data) != PAGE:
            raise ValueError("disk writes are whole pages")
        block = self._block_for(inode, page_index)
        yield from self.disk.write(block, PAGE)
        self.disk_writes += 1
        self._platter[block] = bytes(data)
        return None

    def peek_disk_page(self, inode: Inode, page_index: int) -> bytes:
        """Harness-only: what is currently on the platter (no latency)."""
        block = inode.blocks.get(page_index)
        if block is None:
            return b"\x00" * PAGE
        return self._platter.get(block, b"\x00" * PAGE)

    # -- generation numbers ----------------------------------------------------

    def bump_generation(self, inode: Inode) -> int:
        """Record that a dirty page of this file was lost (Section 4.2)."""
        inode.generation += 1
        return inode.generation
