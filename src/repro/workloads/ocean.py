"""ocean: grid-based scientific simulation (Table 7.1 — "130 by 130
grid, 900 second interval"; taken from the Splash-2 suite in the paper).

The structural properties the paper's results depend on:

* it runs as one parallel process with a thread per processor — on Hive,
  a *spanning task* with a component process per cell;
* its data segment (several grids of 130x130 doubles plus multigrid
  scratch levels) is mapped writable by every thread, so under the
  firewall management policy essentially every remotely-touched page of
  it becomes remotely writable: the paper sampled ~550 such pages per
  cell on a four-cell system;
* execution is dominated by user-mode compute over the grid with
  nearest-neighbour boundary exchange each iteration, so the multicell
  slowdown is ~0-1 % (Table 7.2);
* after a short initialization phase that touches every page, each
  iteration reads boundary rows of neighbouring partitions and writes its
  own partition.

Sizing: the shared segment is ~2,200 pages; each of four components
first-touches ~550 pages of its partition, and every partition page is
eventually imported writable by a neighbour (the write-shared segment),
matching the ~550 remotely-writable pages per cell.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.hardware.params import NS_PER_MS
from repro.workloads.base import Platform, WorkloadResult

#: shared data segment: the u/v/p/q grids plus the multigrid scratch
#: hierarchy (~11.7 MB = 2,932 pages).  Sized so that, with interleaved
#: page placement and contiguous per-thread partitions, each cell ends up
#: exporting ~550 pages writable — the paper's Section 4.2 measurement.
TOTAL_SHARED_PAGES = 2932
#: simulation iterations (timesteps of the 900-second interval)
ITERATIONS = 12
#: CPU time per thread per iteration, sized so the 4-thread run lands
#: near the paper's 6.07 s: 12 iterations x ~0.48 s + init ~0.3 s.
COMPUTE_PER_ITER_NS = 480 * NS_PER_MS
INIT_COMPUTE_NS = 300 * NS_PER_MS
#: boundary rows exchanged with each neighbour every iteration
BOUNDARY_PAGES = 24

SEGMENT_KEY = 1


class OceanWorkload:
    """The ocean spanning-task workload."""

    name = "ocean"

    def __init__(self, nthreads: int = 4,
                 shared_pages: int = TOTAL_SHARED_PAGES,
                 iterations: int = ITERATIONS,
                 compute_per_iter_ns: int = COMPUTE_PER_ITER_NS):
        self.nthreads = nthreads
        self.shared_pages = shared_pages
        self.iterations = iterations
        self.compute_per_iter_ns = compute_per_iter_ns

    def _partition(self, index: int, total: int) -> range:
        per = self.shared_pages // total
        start = index * per
        end = self.shared_pages if index == total - 1 else start + per
        return range(start, end)

    def thread_program(self, index: int, total: int, results: dict):
        workload = self

        def worker(ctx):
            region = next(r for r in ctx.process.aspace.regions
                          if getattr(r, "share_key", 0) == SEGMENT_KEY)
            # Parallel init: the grids are initialized with an interleaved
            # (stride) decomposition, so page data homes end up spread
            # round-robin over the cells — the usual SPLASH init pattern.
            for p in range(index, workload.shared_pages, total):
                yield from ctx.touch(region, p, write=True)
            yield from ctx.compute(INIT_COMPUTE_NS)
            # The solve phase uses a *contiguous* row-block partition, so
            # ~3/4 of each thread's working pages live on other cells and
            # are write-imported (the writable mapping makes the firewall
            # grant write access: Section 4.2's ~550 pages per cell).
            mine = workload._partition(index, total)
            left = workload._partition((index - 1) % total, total)
            right = workload._partition((index + 1) % total, total)
            for _it in range(workload.iterations):
                for p in list(left)[-BOUNDARY_PAGES:]:
                    yield from ctx.touch(region, p)
                for p in list(right)[:BOUNDARY_PAGES]:
                    yield from ctx.touch(region, p)
                # Relax my partition (first iteration imports the pages;
                # later ones are page-table hits).  The revisit stride is
                # coprime with the placement stride so the sampled writes
                # cover locally- and remotely-homed pages alike.
                step = 1 if _it == 0 else 7
                for p in list(mine)[::step]:
                    yield from ctx.touch(region, p, write=True)
                yield from ctx.compute(workload.compute_per_iter_ns)
            results[index] = ctx.sim.now
        return worker

    def run(self, platform: Platform,
            deadline_ns: int = 600_000_000_000) -> WorkloadResult:
        sim = platform.sim
        start = sim.now
        results: dict = {}
        box: dict = {}
        workload = self

        if hasattr(platform.kernels[0], "spawn_spanning_task"):
            def master(ctx):
                cells = [k.kernel_id for k in platform.kernels]
                # round-robin components over the cells; with one cell
                # all components (threads) land there, as on an SMP
                placements = [cells[i % len(cells)]
                              for i in range(workload.nthreads)]
                task = yield from ctx.kernel.spawn_spanning_task(
                    ctx,
                    lambda i, n: workload.thread_program(i, n, results),
                    placements,
                    {SEGMENT_KEY: workload.shared_pages},
                    name="ocean")
                for pid in task.pids():
                    yield from ctx.waitpid(pid)
                box["finished_ns"] = ctx.sim.now
        else:
            def master(ctx):
                # IRIX baseline: threads of one process share its address
                # space; the data segment is a plain anonymous region and
                # all faults stay in the local COW path.
                region = yield from ctx.map_anon(workload.shared_pages)
                region.share_key = SEGMENT_KEY
                kernel = ctx.kernel
                threads = []
                for i in range(workload.nthreads):
                    threads.append(kernel.start_thread(
                        ctx.process,
                        workload.thread_program(i, workload.nthreads,
                                                results),
                        name=f"ocean.t{i}"))
                events = [t.sim_process for t in threads]

                def join():
                    got = yield ctx.sim.all_of(events)
                    return got

                yield from ctx.block(join())
                box["finished_ns"] = ctx.sim.now

        _proc, thread = platform.spawn_init(0, master, "ocean-master")
        sim.run_until_event(thread.sim_process,
                            deadline=start + deadline_ns)
        if "finished_ns" not in box:
            raise TimeoutError(f"ocean still running at {sim.now}")
        return WorkloadResult(
            name=self.name, started_ns=start, finished_ns=box["finished_ns"],
            jobs_completed=len(results),
            jobs_failed=self.nthreads - len(results))
