"""Workload infrastructure: the platform adapter and result records.

A :class:`Platform` hides whether the workload runs on the IRIX baseline
(one :class:`LocalKernel` owning the machine) or a Hive configuration
(1/2/4 cells): workloads ask for "a kernel to place job *i* on" and the
adapter round-robins across cells, matching how the paper's workloads
spread over the machine.

Deterministic file contents let every run be verified: each output file's
bytes derive from its path, so the harness can diff what a workload wrote
against the expected pattern after a fault-injection run (the paper's
"compared to reference copies" check).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple, Union

from repro.core.hive import HiveSystem
from repro.unix.fs import PAGE
from repro.unix.kernel import LocalKernel


def pattern_bytes(path: str, length: int) -> bytes:
    """Deterministic file contents derived from the path."""
    seed = hashlib.sha256(path.encode()).digest()
    reps = (length + len(seed) - 1) // len(seed)
    return (seed * reps)[:length]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    started_ns: int
    finished_ns: int
    jobs_completed: int = 0
    jobs_failed: int = 0
    details: Dict[str, float] = field(default_factory=dict)
    output_errors: List[str] = field(default_factory=list)

    @property
    def elapsed_ns(self) -> int:
        return self.finished_ns - self.started_ns

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9

    @property
    def outputs_ok(self) -> bool:
        return not self.output_errors


class Platform:
    """Adapter over IRIX (LocalKernel) or Hive (HiveSystem)."""

    def __init__(self, target: Union[LocalKernel, HiveSystem]):
        self.target = target
        if isinstance(target, HiveSystem):
            self.is_hive = True
            self.kernels = [target.cell(c)
                            for c in target.registry.all_cell_ids()]
            self.sim = target.sim
            self.machine = target.machine
        else:
            self.is_hive = False
            self.kernels = [target]
            self.sim = target.sim
            self.machine = target.machine

    @property
    def num_placements(self) -> int:
        """How many distinct placement domains jobs spread over."""
        return len(self.kernels)

    def kernel_for(self, index: int) -> LocalKernel:
        """Placement domain for job ``index`` (skips failed cells)."""
        preferred = self.kernels[index % len(self.kernels)]
        if preferred.alive:
            return preferred
        live = self.live_kernels()
        if not live:
            raise RuntimeError("no live kernels")
        return live[index % len(live)]

    def live_kernels(self) -> List[LocalKernel]:
        return [k for k in self.kernels if k.alive]

    def spawn_init(self, index: int, program, name: str):
        kernel = self.kernel_for(index)
        proc = kernel.create_process(name)
        thread = kernel.start_thread(proc, program)
        return proc, thread

    # -- placement-aware helpers ------------------------------------------

    def cell_index_of_kernel(self, kernel: LocalKernel) -> int:
        return self.kernels.index(kernel)

    def fs_owner_kernel(self, path: str) -> Optional[LocalKernel]:
        """The kernel serving a path (None if its cell is down)."""
        node = self.kernels[0].namespace.node_for(path)
        for kernel in self.kernels:
            if node in kernel.filesystems:
                return kernel if kernel.alive else None
        return None

    # -- output verification ---------------------------------------------------

    def verify_file(self, path: str, expected: bytes) -> List[str]:
        """Compare a file's bytes (page cache view + platter) to expected.

        Reads through the owning kernel's page cache first — what a
        process would see — falling back to the platter.  Used for the
        paper's post-run reference-copy comparison.
        """
        errors: List[str] = []
        kernel = self.fs_owner_kernel(path)
        if kernel is None:
            errors.append(f"{path}: file system unavailable (cell down)")
            return errors
        fs = kernel.local_fs_for(path)
        try:
            inode = fs.lookup(path)
        except Exception as exc:
            errors.append(f"{path}: {exc}")
            return errors
        if inode.size != len(expected):
            errors.append(
                f"{path}: size {inode.size} != expected {len(expected)}")
            return errors
        tag = ("file", fs.fs_id, inode.ino)
        # Resident pages read in one bulk call (vectorized fault check on
        # a healthy machine); absent or unreadable pages come off the
        # platter one by one, exactly as the per-page loop did.
        memory = kernel.machine.memory
        resident = []
        for idx in range(inode.npages):
            pf = kernel.pfdats.lookup((tag, idx))
            if pf is not None and pf.valid:
                resident.append((idx, pf.frame))
        page_data: dict = {}
        if resident:
            try:
                bulk = memory.read_pages([f for _, f in resident])
                page_data = {idx: data
                             for (idx, _f), data in zip(resident, bulk)}
            except Exception:
                # A failed node mid-batch: re-read page by page so each
                # page individually falls back to the platter.
                for idx, frame in resident:
                    try:
                        page_data[idx] = memory.read_page(frame)
                    except Exception:
                        pass
        for idx in range(inode.npages):
            data = page_data.get(idx)
            if data is None:
                data = fs.peek_disk_page(inode, idx)
            want = expected[idx * PAGE:(idx + 1) * PAGE]
            want = want + b"\x00" * (PAGE - len(want))
            if data != want:
                errors.append(f"{path}: page {idx} content mismatch")
        return errors


def run_to_completion(platform: Platform, done_events: List,
                      deadline_ns: int) -> None:
    """Drive the simulation until all events trigger (or deadline)."""
    sim = platform.sim
    all_done = sim.all_of(done_events)
    sim.run(until=deadline_ns)
    if not all_done.triggered:
        pending = [ev for ev in done_events if not ev.triggered]
        raise TimeoutError(
            f"workload missed deadline {deadline_ns}: "
            f"{len(pending)} jobs still pending at {sim.now}")
