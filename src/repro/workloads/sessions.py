"""Million-session open-loop traffic frontend.

The paper's workloads (pmake, ocean, raytrace) are *closed* — a fixed
set of jobs that the machine finishes.  A standalone-server Hive also
faces *open* traffic: sessions arrive whether or not the machine keeps
up, with heavy-tailed interarrival and service-size distributions, and
the interesting fault metric is how many in-flight sessions one cell
failure costs (the availability observatory's work-lost view, at
session granularity).

This module generates that traffic at million-session scale against a
booted :class:`~repro.core.hive.HiveSystem`:

* **per-session RNG substreams** — every draw of session ``sid`` is a
  pure function of ``(seed, sid, draw-index)`` through a SplitMix64
  counter stream; session ``sid`` owns the disjoint counter block
  ``[sid*DRAWS_PER_SESSION, (sid+1)*DRAWS_PER_SESSION)``, so substreams
  are deterministic and non-overlapping by construction, independent of
  chunking (the property the tests pin down);
* **open-loop queueing** — arrivals follow a lognormal or Pareto
  interarrival process; each session carries a heavy-tailed service
  demand scaled by its type (compile / compute / fs-heavy mix) and is
  placed round-robin on a per-cell FCFS server pool.  The exact FCFS
  recurrence ``finish_i = max(arrival_i, finish_{i-1}) + service_i``
  runs vectorized (cumsum + running max), so a million sessions cost
  array passes, not a million engine events;
* **real sharing traffic** — the generator advances the simulator
  chunk by chunk, and a deterministic fraction of sessions issues real
  coherence accesses against firewall-granted remote frames (the
  throughput bench's grant path), so kernel clocks, fault detection and
  recovery interleave with the session timeline; sampled *probe*
  sessions additionally run as real kernel processes (map/touch/compute)
  through the :class:`~repro.workloads.base.Platform` adapter;
* **fault accounting** — a session is *lost* when its cell died before
  its service completed (and, without failover, when it arrived at a
  dead cell); arrivals after a known death fail over to the surviving
  cells.  ``sessions_lost_per_fault`` lands next to the availability
  observatory's ledger in the report.

Everything is seed-deterministic: counters, placements, losses and
latency histograms are byte-identical run to run (and fork to boot,
under the snapshot golden contract); only wall-clock rates vary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hive import HiveSystem, boot_hive
from repro.hardware.errors import BusError, FirewallViolation
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS, HardwareParams
from repro.sim.engine import Simulator
from repro.sim.snapshot import SystemImage, snapshot_enabled
from repro.sim.stats import Histogram
from repro.workloads.base import Platform

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None

#: session types and their service-time scale / coherence-coupling weight
SESSION_TYPES: Tuple[str, ...] = ("compile", "compute", "fs")
_SERVICE_SCALE = {"compile": 1.25, "compute": 1.0, "fs": 0.75}
_COUPLING_WEIGHT = {"compile": 1.0, "compute": 0.25, "fs": 2.0}

#: uniform draws reserved per session (indices are the substream layout:
#: 0/1 feed the interarrival draw, 2/3 the service draw, 4 the type mix;
#: unused indices stay reserved so changing a distribution never makes
#: two sessions' streams overlap).
DRAWS_PER_SESSION = 5
DRAW_ARRIVAL, DRAW_ARRIVAL2, DRAW_SERVICE, DRAW_SERVICE2, DRAW_TYPE = range(5)

#: latency buckets for session latencies (µs to tens of seconds — open
#: queues under overload run far past the RPC-scale default bounds).
SESSION_LATENCY_BOUNDS_NS = tuple(
    int(x) for x in (
        1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8,
        1e9, 3e9, 1e10, 3e10, 1e11))


def _require_numpy() -> None:
    if np is None:  # pragma: no cover
        raise RuntimeError(
            "the sessions workload requires numpy for vectorized "
            "generation (install numpy or use the kernel workloads)")


# -- per-session substreams -------------------------------------------------

_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MIX1 = 0xBF58476D1CE4E5B9
_SM_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: "np.ndarray") -> "np.ndarray":
    """Vectorized SplitMix64 finalizer over uint64 counters."""
    x = (x + np.uint64(_SM_GAMMA)).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_SM_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_SM_MIX2)
    x ^= x >> np.uint64(31)
    return x


def _stream_base(seed: int) -> int:
    """The per-seed stream key (itself SplitMix64-whitened so adjacent
    seeds land in unrelated counter regions)."""
    arr = np.asarray([seed & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
    return int(_splitmix64(_splitmix64(arr))[0])


def session_uniforms(seed: int, sids: "np.ndarray",
                     draw: int) -> "np.ndarray":
    """Uniform(0, 1] draw ``draw`` of each session in ``sids``.

    Session ``sid``'s substream is the counter block
    ``[sid*DRAWS_PER_SESSION, (sid+1)*DRAWS_PER_SESSION)`` hashed
    against the seed's stream key — deterministic, vectorized, and
    non-overlapping across sessions by construction.
    """
    _require_numpy()
    if not 0 <= draw < DRAWS_PER_SESSION:
        raise ValueError(f"draw index {draw} out of range")
    counters = (np.asarray(sids, dtype=np.uint64)
                * np.uint64(DRAWS_PER_SESSION) + np.uint64(draw))
    bits = _splitmix64(counters + np.uint64(_stream_base(seed)))
    # Top 53 bits -> (0, 1]: never 0, so log() is always safe.
    return ((bits >> np.uint64(11)).astype(np.float64) + 1.0) * (2.0 ** -53)


def _heavy_tailed(kind: str, mean: float, shape: float, u1: "np.ndarray",
                  u2: "np.ndarray") -> "np.ndarray":
    """Heavy-tailed positive samples with the requested mean.

    ``lognormal``: ``shape`` is sigma; mu is solved so E[X] = mean (the
    normal deviate comes from a Box-Muller transform of the session's
    two uniforms).  ``pareto``: ``shape`` is alpha (> 1); the scale is
    solved so E[X] = mean.
    """
    if kind == "lognormal":
        z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        mu = np.log(mean) - 0.5 * shape * shape
        return np.exp(mu + shape * z)
    if kind == "pareto":
        if shape <= 1.0:
            raise ValueError("pareto shape must be > 1 for a finite mean")
        xm = mean * (shape - 1.0) / shape
        return xm * np.power(u1, -1.0 / shape)
    raise ValueError(f"unknown distribution {kind!r}")


# -- configuration ----------------------------------------------------------


@dataclass(frozen=True)
class SessionTrafficConfig:
    """The open-loop traffic scenario."""

    sessions: int = 100_000
    seed: int = 1995
    #: interarrival process: mean gap and distribution shape
    mean_interarrival_ns: float = 10_000.0
    interarrival: str = "lognormal"
    interarrival_shape: float = 1.0
    #: service demand: mean and distribution shape
    mean_service_ns: float = 200_000.0
    service: str = "pareto"
    service_shape: float = 1.9
    #: session-type mix (weights over SESSION_TYPES, normalized)
    mix: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    #: FCFS session servers per cell
    servers_per_cell: int = 8
    #: sessions generated (and sim-advanced) per vectorized chunk
    chunk_sessions: int = 65_536
    #: mean real coherence accesses issued per session (type-weighted)
    coupling_ops_per_session: float = 0.02
    #: remote frames each cell grants its neighbour for the coupling
    coupling_frames: int = 8
    #: every Nth session also runs as a real kernel process (0 = off)
    probe_every: int = 0
    #: fail-stop a node of the victim cell at this sim time (None = no
    #: fault); the victim defaults to the last cell
    inject_ms: Optional[int] = None
    victim_cell: Optional[int] = None
    #: re-route arrivals from dead cells to survivors
    failover: bool = True

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions, "seed": self.seed,
            "mean_interarrival_ns": self.mean_interarrival_ns,
            "interarrival": self.interarrival,
            "interarrival_shape": self.interarrival_shape,
            "mean_service_ns": self.mean_service_ns,
            "service": self.service, "service_shape": self.service_shape,
            "mix": tuple(self.mix),
            "servers_per_cell": self.servers_per_cell,
            "chunk_sessions": self.chunk_sessions,
            "coupling_ops_per_session": self.coupling_ops_per_session,
            "coupling_frames": self.coupling_frames,
            "probe_every": self.probe_every,
            "inject_ms": self.inject_ms,
            "victim_cell": self.victim_cell,
            "failover": self.failover,
        }


def generate_chunk(cfg: SessionTrafficConfig, start_sid: int, count: int,
                   t0_ns: float) -> Dict[str, "np.ndarray"]:
    """Arrivals, service demands and types for sessions
    ``[start_sid, start_sid + count)``, starting the clock at ``t0_ns``.

    Pure per-session substream math — the same session gets the same
    draws whatever chunk boundaries it lands in.
    """
    _require_numpy()
    sids = np.arange(start_sid, start_sid + count, dtype=np.uint64)
    seed = cfg.seed
    inter = _heavy_tailed(
        cfg.interarrival, cfg.mean_interarrival_ns, cfg.interarrival_shape,
        session_uniforms(seed, sids, DRAW_ARRIVAL),
        session_uniforms(seed, sids, DRAW_ARRIVAL2))
    arrivals = t0_ns + np.cumsum(inter)
    service = _heavy_tailed(
        cfg.service, cfg.mean_service_ns, cfg.service_shape,
        session_uniforms(seed, sids, DRAW_SERVICE),
        session_uniforms(seed, sids, DRAW_SERVICE2))
    weights = np.asarray(cfg.mix, dtype=np.float64)
    cum = np.cumsum(weights / weights.sum())
    types = np.searchsorted(
        cum, session_uniforms(seed, sids, DRAW_TYPE), side="left")
    types = np.minimum(types, len(SESSION_TYPES) - 1).astype(np.int8)
    scale = np.asarray([_SERVICE_SCALE[t] for t in SESSION_TYPES])
    service = service * scale[types]
    return {"sids": sids, "arrivals": arrivals, "service": service,
            "types": types}


# -- report -----------------------------------------------------------------


@dataclass
class SessionReport:
    """What one traffic run produced (JSON-safe via :meth:`to_dict`)."""

    sessions: int
    completed: int
    lost: int
    lost_arrivals: int
    faults: int
    sessions_lost_per_fault: float
    wall_s: float
    sessions_per_sec: float
    sim_horizon_ms: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_hist: dict
    by_type: Dict[str, int]
    coupling_accesses: int
    coupling_retired_cells: int
    probes_launched: int
    probes_completed: int
    cells: int
    servers_per_cell: int
    seed: int
    config: dict = field(default_factory=dict)
    availability: Optional[dict] = None

    def to_dict(self) -> dict:
        out = {
            "sessions": self.sessions,
            "completed": self.completed,
            "lost": self.lost,
            "lost_arrivals": self.lost_arrivals,
            "faults": self.faults,
            "sessions_lost_per_fault": self.sessions_lost_per_fault,
            "wall_s": self.wall_s,
            "sessions_per_sec": self.sessions_per_sec,
            "sim_horizon_ms": self.sim_horizon_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_hist": self.latency_hist,
            "by_type": dict(self.by_type),
            "coupling_accesses": self.coupling_accesses,
            "coupling_retired_cells": self.coupling_retired_cells,
            "probes_launched": self.probes_launched,
            "probes_completed": self.probes_completed,
            "cells": self.cells,
            "servers_per_cell": self.servers_per_cell,
            "seed": self.seed,
            "config": dict(self.config),
        }
        if self.availability is not None:
            out["availability"] = self.availability
        return out


# -- coupling: real coherence traffic from the session stream ---------------


class _CouplingDriver:
    """Issues real firewall-checked coherence accesses on behalf of the
    session stream (the throughput bench's grant path, re-used)."""

    def __init__(self, system: HiveSystem, cfg: SessionTrafficConfig):
        self.system = system
        self.cfg = cfg
        self.accesses = 0
        self.retired: set = set()
        self._cycles: Dict[int, list] = {}
        self._cursor: Dict[int, int] = {}
        self._cpu: Dict[int, int] = {}
        self._carry: Dict[int, float] = {}
        if cfg.coupling_ops_per_session <= 0:
            return
        sim = system.sim
        registry = system.registry
        machine = system.machine
        coh = machine.coherence
        line = machine.params.cache_line_size
        lines_per_page = machine.params.page_size // line
        cell_ids = registry.all_cell_ids()
        grants: Dict[int, list] = {}

        def _granter(cell, client: int, frames_out: list):
            pfs = [cell.pfdats.alloc_frame()
                   for _ in range(cfg.coupling_frames)]
            for pf in pfs:
                yield from cell.firewall_mgr.grant_write(pf, client)
                frames_out.append(pf.frame)
            return None

        for c in cell_ids:
            client = cell_ids[(cell_ids.index(c) + 1) % len(cell_ids)]
            frames: list = []
            grants[client] = frames
            sim.process(_granter(registry.cell_object(c), client, frames),
                        name=f"session-granter{c}")
        # The grant path is pure simulation: drain it before traffic.
        sim.run(until=sim.now + 2_000_000)
        ops = 16
        for client, frames in grants.items():
            if not frames:
                continue
            cycle = []
            for t in range(4):
                base = t * ops
                line_ids = [
                    frames[(base + k) % len(frames)] * lines_per_page
                    + ((base + 2 * k) % lines_per_page)
                    for k in range(ops)]
                op_list = [(base + 2 * k) & 1 for k in range(ops)]
                cycle.append(coh.prepare_batch(line_ids, op_list))
            self._cycles[client] = cycle
            self._cursor[client] = 0
            self._cpu[client] = registry.cell_object(client).cpu_ids[0]
            self._carry[client] = 0.0

    def issue(self, per_cell_weight: Dict[int, float]) -> None:
        """Issue the chunk's coupling accesses (deterministic counts:
        a fractional-accumulator per client cell, 16 ops per batch)."""
        if not self._cycles:
            return
        coh = self.system.machine.coherence
        registry = self.system.registry
        for client, cycle in sorted(self._cycles.items()):
            if client in self.retired or not registry.is_live(client):
                continue
            self._carry[client] += per_cell_weight.get(client, 0.0)
            batches = int(self._carry[client] // 16)
            self._carry[client] -= batches * 16
            cursor = self._cursor[client]
            cpu = self._cpu[client]
            for _ in range(batches):
                try:
                    coh.access_prepared(cpu, cycle[cursor & 3])
                except (BusError, FirewallViolation):
                    # The granter died and revoked: this client retires
                    # from the sharing pool (exactly like the bench
                    # driver), the sessions themselves keep flowing.
                    self.retired.add(client)
                    break
                self.accesses += 16
                cursor += 1
            self._cursor[client] = cursor


# -- probe sessions: sampled real kernel work -------------------------------


def _probe_program(service_ns: int, box: dict):
    def program(ctx):
        region = yield from ctx.map_anon(2)
        yield from ctx.touch_many(region, 0, 2, write=True)
        yield from ctx.compute(service_ns)
        box["completed"] += 1
        return None
    return program


# -- the run ----------------------------------------------------------------


def run_session_traffic(system: HiveSystem, cfg: SessionTrafficConfig,
                        recorder=None) -> SessionReport:
    """Drive the open-loop session stream against a booted system.

    Advances the simulator in lockstep with the generated arrivals, so
    kernel clock loops, the optional fail-stop fault, detection and
    recovery all interleave with the session timeline; session-level
    queueing runs vectorized on the side.  ``recorder`` (a flight
    recorder attached by the caller) adds the availability ledger to
    the report.
    """
    _require_numpy()
    sim = system.sim
    registry = system.registry
    cell_ids = registry.all_cell_ids()
    ncells = len(cell_ids)
    nservers = cfg.servers_per_cell

    # Death ledger: (time_ns, cell) per fail-stop, straight from the
    # injector; cells that die without a hardware record (sw panics)
    # are caught by the liveness sweep at chunk boundaries.
    deaths: Dict[int, float] = {}

    def note_injection(record) -> None:
        cell = registry.cell_of_node(record.node_id)
        deaths.setdefault(cell, float(record.time_ns))

    system.injector.observers.append(note_injection)
    if cfg.inject_ms is not None:
        victim = (cfg.victim_cell if cfg.victim_cell is not None
                  else cell_ids[-1])
        system.injector.inject_at(cfg.inject_ms * NS_PER_MS,
                                  FaultInjector.NODE_FAILURE,
                                  registry.first_node_of(victim),
                                  trigger="session-traffic")

    coupling = _CouplingDriver(system, cfg)
    platform = Platform(system) if cfg.probe_every else None
    probe_box = {"completed": 0}
    probes_launched = 0

    weights = np.asarray(cfg.mix, dtype=np.float64)
    weights = weights / weights.sum()
    coupling_weight = np.asarray(
        [_COUPLING_WEIGHT[t] for t in SESSION_TYPES])

    all_arrivals: List["np.ndarray"] = []
    all_finish: List["np.ndarray"] = []
    all_cells: List["np.ndarray"] = []
    all_types: List["np.ndarray"] = []
    lost_arrivals = 0
    last_finish: Dict[Tuple[int, int], float] = {}
    server_rr: Dict[int, int] = {c: 0 for c in cell_ids}
    by_type = {name: 0 for name in SESSION_TYPES}

    wall0 = time.perf_counter()
    t_cursor = float(sim.now)
    produced = 0
    while produced < cfg.sessions:
        count = min(cfg.chunk_sessions, cfg.sessions - produced)
        chunk = generate_chunk(cfg, produced, count, t_cursor)
        arrivals = chunk["arrivals"]
        service = chunk["service"]
        types = chunk["types"]
        t_cursor = float(arrivals[-1])
        produced += count

        # Advance the machine through the chunk's arrival window: the
        # fault, detection, recovery and kernel clocks all run here.
        sim.run(until=int(t_cursor))
        for c in cell_ids:  # sweep for deaths with no injector record
            if c not in deaths and not registry.is_live(c):
                deaths.setdefault(c, float(sim.now))

        # Real sharing traffic proportional to the chunk's type mix.
        if coupling._cycles:
            tcounts = np.bincount(types, minlength=len(SESSION_TYPES))
            ops = float((tcounts * coupling_weight).sum()
                        * cfg.coupling_ops_per_session)
            per_cell = {c: ops / ncells for c in cell_ids}
            coupling.issue(per_cell)

        # Placement: static round-robin, with arrivals after a known
        # death failing over to the surviving cells.
        cells_arr = np.asarray(cell_ids, dtype=np.int64)[
            (chunk["sids"] % np.uint64(ncells)).astype(np.int64)]
        if deaths:
            live = [c for c in cell_ids if c not in deaths]
            for dead_cell, died_at in sorted(deaths.items()):
                mask = (cells_arr == dead_cell) & (arrivals >= died_at)
                if not mask.any():
                    continue
                if cfg.failover and live:
                    idx = np.flatnonzero(mask)
                    cells_arr[idx] = np.asarray(
                        [live[int(s) % len(live)]
                         for s in chunk["sids"][idx]], dtype=np.int64)
                elif not cfg.failover:
                    lost_arrivals += int(mask.sum())

        # Per-cell FCFS server pool: exact vectorized recurrence.
        finish = np.empty_like(arrivals)
        for c in cell_ids:
            cidx = np.flatnonzero(cells_arr == c)
            if cidx.size == 0:
                continue
            srv = (server_rr[c] + np.arange(cidx.size)) % nservers
            server_rr[c] = (server_rr[c] + cidx.size) % nservers
            for s in range(nservers):
                qidx = cidx[srv == s]
                if qidx.size == 0:
                    continue
                a = arrivals[qidx]
                sv = service[qidx]
                cs = np.cumsum(sv)
                prev = last_finish.get((c, s), 0.0)
                gap = np.maximum.accumulate(
                    np.maximum(a - (cs - sv), prev))
                q_finish = cs + gap
                finish[qidx] = q_finish
                last_finish[(c, s)] = float(q_finish[-1])

        # Sampled probe sessions run as real kernel processes on their
        # session's cell.
        if platform is not None and cfg.probe_every:
            probe_sids = np.flatnonzero(
                chunk["sids"] % np.uint64(cfg.probe_every) == 0)
            for i in probe_sids:
                cell = int(cells_arr[i])
                if not registry.is_live(cell):
                    continue
                platform.spawn_init(
                    cell_ids.index(cell),
                    _probe_program(int(service[i]), probe_box),
                    f"session-probe{int(chunk['sids'][i])}")
                probes_launched += 1

        for t, name in enumerate(SESSION_TYPES):
            by_type[name] += int((types == t).sum())
        all_arrivals.append(arrivals)
        all_finish.append(finish)
        all_cells.append(cells_arr)
        all_types.append(types)

    arrivals = np.concatenate(all_arrivals)
    finish = np.concatenate(all_finish)
    cells_arr = np.concatenate(all_cells)

    # Drain: let queued service, probes and recovery run out.
    horizon = int(max(t_cursor, float(finish.max()))) + 200 * NS_PER_MS
    sim.run(until=horizon)
    for c in cell_ids:
        if c not in deaths and not registry.is_live(c):
            deaths.setdefault(c, float(sim.now))

    # Loss accounting against the final death ledger: a session whose
    # cell died before its service finished never completed.
    lost_mask = np.zeros(len(arrivals), dtype=bool)
    for dead_cell, died_at in deaths.items():
        lost_mask |= (cells_arr == dead_cell) & (finish > died_at)
    completed_mask = ~lost_mask
    lost = int(lost_mask.sum())
    completed = int(completed_mask.sum()) - lost_arrivals
    latencies = (finish - arrivals)[completed_mask]
    wall_s = time.perf_counter() - wall0

    hist = Histogram("session_latency_ns",
                     list(SESSION_LATENCY_BOUNDS_NS))
    if latencies.size:
        hist.record_many(latencies.astype(np.int64))
        p50 = float(np.percentile(latencies, 50))
        p99 = float(np.percentile(latencies, 99))
        mean = float(latencies.mean())
    else:
        p50 = p99 = mean = 0.0
    faults = len(deaths)

    availability = None
    if recorder is not None:
        from repro.obs import availability_report
        availability = availability_report(recorder, system)

    return SessionReport(
        sessions=cfg.sessions,
        completed=completed,
        lost=lost,
        lost_arrivals=lost_arrivals,
        faults=faults,
        sessions_lost_per_fault=(round(lost / faults, 2) if faults
                                 else 0.0),
        wall_s=round(wall_s, 4),
        sessions_per_sec=round(cfg.sessions / wall_s, 1) if wall_s else 0.0,
        sim_horizon_ms=round(horizon / NS_PER_MS, 3),
        latency_p50_ms=round(p50 / NS_PER_MS, 4),
        latency_p99_ms=round(p99 / NS_PER_MS, 4),
        latency_mean_ms=round(mean / NS_PER_MS, 4),
        latency_hist=hist.to_dict(),
        by_type=by_type,
        coupling_accesses=coupling.accesses,
        coupling_retired_cells=len(coupling.retired),
        probes_launched=probes_launched,
        probes_completed=probe_box["completed"],
        cells=ncells,
        servers_per_cell=nservers,
        seed=cfg.seed,
        config=cfg.to_dict(),
        availability=availability,
    )


# -- top-level runner (boot or snapshot-fork) -------------------------------


def boot_session_system(cells: int = 4, nodes: int = 4,
                        seed: int = 1995) -> HiveSystem:
    """Boot a machine for session traffic (module-level, image-bootable)."""
    params = HardwareParams(num_nodes=nodes)
    sim = Simulator(crash_on_process_error=False)
    return boot_hive(sim, num_cells=cells,
                     machine_config=MachineConfig(params=params, seed=seed))


def _session_payload(system: HiveSystem, cfg_dict: dict) -> dict:
    """Attach the flight recorder, run the traffic, return the report
    dict (module-level so it crosses a snapshot image's pipe)."""
    from repro.obs import attach_flight_recorder

    cfg = SessionTrafficConfig(**cfg_dict)
    recorder = attach_flight_recorder(system)
    report = run_session_traffic(system, cfg, recorder=recorder)
    return report.to_dict()


_SESSION_IMAGES: Dict[tuple, SystemImage] = {}


def run_sessions(cfg: SessionTrafficConfig, cells: int = 4,
                 nodes: int = 4, snapshot: bool = False) -> dict:
    """Boot (or snapshot-fork) a system and run the traffic scenario.

    Returns the session report dict with ``boot_wall_s``/``fork_wall_s``
    setup accounting attached.
    """
    if snapshot and snapshot_enabled():
        key = (cells, nodes)
        image = _SESSION_IMAGES.get(key)
        if image is None or image.closed:
            image = SystemImage(boot_session_system, cells, nodes, 1995,
                                name=f"sessions-{cells}c{nodes}n")
            _SESSION_IMAGES[key] = image
        out = image.run(_session_payload, cfg.to_dict(), seed=cfg.seed)
        out["boot_wall_s"] = round(image.boot_wall_s, 4)
        out["fork_wall_s"] = round(image.fork_wall_s_last, 4)
        out["snapshot"] = "fork"
        return out
    t0 = time.perf_counter()
    system = boot_session_system(cells, nodes, cfg.seed)
    boot_wall = time.perf_counter() - t0
    out = _session_payload(system, cfg.to_dict())
    out["boot_wall_s"] = round(boot_wall, 4)
    out["fork_wall_s"] = 0.0
    out["snapshot"] = "boot"
    return out
