"""raytrace: graphics rendering (Table 7.1 — "rendering a teapot; 6
antialias rays per pixel"; from the Splash-2 suite).

Structural properties the paper's results depend on:

* a parent process *builds the scene* (teapot geometry + acceleration
  grid) in its anonymous memory, then forks workers across the machine —
  on Hive this exercises the cross-cell fork path and the distributed
  copy-on-write tree of Section 5.3: each worker's anonymous faults
  search up through the parent's (possibly remote) COW nodes with the
  careful reference protocol, then import the scene pages;
* the scene is read-mostly, so workers import read-only — almost no
  remotely-writable pages, and a multicell slowdown of ~0-1 %;
* each worker renders a band of the image (pure compute) and writes its
  band to an output file.

This is also the workload the paper injected COW-tree corruption under,
because workers traverse the victim cell's tree nodes remotely.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.hardware.params import NS_PER_MS
from repro.unix.fs import PAGE
from repro.workloads.base import Platform, WorkloadResult, pattern_bytes

#: teapot geometry + uniform grid: ~3 MB of scene data
SCENE_PAGES = 768
#: image bands (one worker per band; bands round-robin over cells)
NUM_WORKERS = 4
#: fraction of the scene each worker actually reads (spatial locality)
SCENE_SAMPLE_STEP = 2
#: render compute per worker: 4 workers at ~1.0 s each ≈ the paper's
#: 4.35 s wall time once scene build + fault time is added.
COMPUTE_PER_WORKER_NS = 4_150 * NS_PER_MS
SCENE_BUILD_COMPUTE_NS = 150 * NS_PER_MS
OUTPUT_PAGES = 6

OUT_DIR = "/results"


class RaytraceWorkload:
    """The raytrace fork-based workload."""

    name = "raytrace"

    def __init__(self, num_workers: int = NUM_WORKERS,
                 scene_pages: int = SCENE_PAGES,
                 compute_per_worker_ns: int = COMPUTE_PER_WORKER_NS):
        self.num_workers = num_workers
        self.scene_pages = scene_pages
        self.compute_per_worker_ns = compute_per_worker_ns
        self.expected_outputs: Dict[str, bytes] = {}

    def out_path(self, band: int) -> str:
        return f"{OUT_DIR}/band{band}.ppm"

    def worker_program(self, band: int, results: dict):
        workload = self

        def worker(ctx):
            # The scene region was inherited from the parent at fork; its
            # pages resolve through the (cross-cell) COW search.  Rays
            # wander into new grid voxels as rendering progresses, so the
            # scene is faulted lazily in chunks *between* long compute
            # stretches — which is why the paper's COW-tree corruption
            # took hundreds of milliseconds to be traversed and detected.
            scene = next(r for r in ctx.process.aspace.regions
                         if r.kind == "anon" and r.npages ==
                         workload.scene_pages)
            pages = list(range(band % SCENE_SAMPLE_STEP, scene.npages,
                               SCENE_SAMPLE_STEP))
            nchunks = 6
            per_chunk = max(1, len(pages) // nchunks)
            compute_slice = workload.compute_per_worker_ns // nchunks
            for i in range(0, len(pages), per_chunk):
                yield from ctx.compute(compute_slice)
                for p in pages[i:i + per_chunk]:
                    yield from ctx.touch(scene, p)
            leftover = workload.compute_per_worker_ns - compute_slice * (
                (len(pages) + per_chunk - 1) // per_chunk)
            if leftover > 0:
                yield from ctx.compute(leftover)
            path = workload.out_path(band)
            data = pattern_bytes(path, OUTPUT_PAGES * PAGE)
            fd = yield from ctx.open(path, "w", create=True)
            yield from ctx.write(fd, data)
            yield from ctx.close(fd)
            workload.expected_outputs[path] = data
            results[band] = ctx.sim.now
        return worker

    def parent_program(self, platform: Platform, results: dict,
                       box: dict):
        workload = self

        def parent(ctx):
            # Build the scene in anonymous memory (recorded at this
            # process's COW leaf, which becomes the interior node every
            # worker searches up to after the forks split it).
            scene = yield from ctx.map_anon(workload.scene_pages)
            for p in range(scene.npages):
                yield from ctx.touch(scene, p, write=True)
            yield from ctx.compute(SCENE_BUILD_COMPUTE_NS)
            from repro.unix.errors import FileError, RpcTimeout

            pids = []
            for band in range(workload.num_workers):
                target = None
                if platform.is_hive and platform.num_placements > 1:
                    target = platform.kernel_for(band).kernel_id
                    if target == ctx.kernel.kernel_id:
                        target = None
                try:
                    pid = yield from ctx.spawn(
                        workload.worker_program(band, results),
                        name=f"ray{band}", target_cell=target)
                except (FileError, RpcTimeout):
                    pid = yield from ctx.spawn(
                        workload.worker_program(band, results),
                        name=f"ray{band}")
                pids.append(pid)
            failed = 0
            for pid in pids:
                status = yield from ctx.waitpid(pid)
                if status != 0:
                    failed += 1
            box["failed"] = failed
            box["finished_ns"] = ctx.sim.now
        return parent

    def run(self, platform: Platform,
            deadline_ns: int = 600_000_000_000) -> WorkloadResult:
        sim = platform.sim
        start = sim.now
        results: dict = {}
        box: dict = {}
        _proc, thread = platform.spawn_init(
            0, self.parent_program(platform, results, box), "raytrace")
        sim.run_until_event(thread.sim_process,
                            deadline=start + deadline_ns)
        if "finished_ns" not in box:
            raise TimeoutError(f"raytrace still running at {sim.now}")
        result = WorkloadResult(
            name=self.name, started_ns=start,
            finished_ns=box["finished_ns"],
            jobs_completed=len(results), jobs_failed=box["failed"])
        for path, expected in self.expected_outputs.items():
            result.output_errors.extend(platform.verify_file(path, expected))
        return result
