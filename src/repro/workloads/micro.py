"""Kernel-operation microbenchmarks (Tables 5.2 and 7.3, Sections 4.1/6).

Each function boots (or receives) a system, drives the operation under
measurement through the real code paths, and returns latencies in
nanoseconds.  The paper ran these "on a two-processor two-cell system
using microbenchmarks, with the file cache warmed up" — the helpers here
default to that configuration for the local/remote comparisons.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.hive import HiveSystem, boot_hive, boot_irix
from repro.hardware.machine import Machine, MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE
from repro.workloads.base import Platform, pattern_bytes

MB4 = 4 * 1024 * 1024  # the Table 7.3 transfer size


def boot_two_cell(seed: int = 1995) -> HiveSystem:
    """The paper's microbenchmark machine: two CPUs, two cells."""
    params = HardwareParams(num_nodes=2)
    sim = Simulator()
    return boot_hive(sim, num_cells=2,
                     machine_config=MachineConfig(params=params, seed=seed))


def _run_program(platform: Platform, cell_index: int, program,
                 box: dict, deadline_ns: int = 600_000_000_000) -> dict:
    _proc, thread = platform.spawn_init(cell_index, program, "microbench")
    platform.sim.run_until_event(thread.sim_process,
                                 deadline=platform.sim.now + deadline_ns)
    if "done" not in box:
        raise TimeoutError("microbenchmark did not finish")
    return box


def _make_file(platform: Platform, path: str, nbytes: int,
               warm: bool = True) -> None:
    """Create a file on its home kernel and optionally warm its cache."""
    box: dict = {}

    def setup(ctx):
        fd = yield from ctx.open(path, "w", create=True)
        yield from ctx.write(fd, pattern_bytes(path, nbytes))
        yield from ctx.close(fd)
        box["done"] = True

    owner = platform.fs_owner_kernel(path)
    index = platform.kernels.index(owner)
    _run_program(platform, index, setup, box)
    if warm:
        proc = platform.sim.process(owner.warm_file(path), name="warm")
        platform.sim.run_until_event(
            proc, deadline=platform.sim.now + 120_000_000_000)


# ---------------------------------------------------------------------------
# page faults (Tables 5.2 / 7.3)
# ---------------------------------------------------------------------------

def measure_page_fault(system: HiveSystem, remote: bool,
                       nfaults: int = 1024) -> Dict[str, float]:
    """Average latency of page faults that hit in the page cache.

    ``remote=False``: client is the file's home cell (6.9 us in the
    paper); ``remote=True``: client is another cell and every fault's
    first touch goes to the data home (50.7 us).  Pages are re-faulted by
    unmapping between rounds so each measured fault misses the client's
    page table but hits a page cache.
    """
    platform = Platform(system)
    path = "/mb/fault.dat"
    npages = min(nfaults, 512)
    rounds = (nfaults + npages - 1) // npages
    system.namespace.mount("/mb", platform.kernels[0].node_ids[0])
    _make_file(platform, path, npages * PAGE)
    client_index = 1 if remote else 0
    client = platform.kernels[client_index]
    box: dict = {}
    latencies: List[int] = []

    def bench(ctx):
        region = yield from ctx.map_file(path, writable=False)
        # Prime the import once so the data home export exists, then
        # drop mappings: with remote=True the client hash is cleared too
        # so every fault pays the full RPC path.
        for _round in range(rounds):
            for p in range(npages):
                if remote:
                    # Clear client-side cache entry to force the RPC.
                    tag = ("file", region.fs_id, region.ino)
                    pf = client.pfdats.lookup((tag, p))
                    if pf is not None and pf.extended:
                        client.release_imported_page(pf)
                        pf2 = client.pfdats.lookup((tag, p))
                        if pf2 is not None:
                            client.pfdats.remove(pf2)
                ctx.process.aspace.unmap_page(client.kernel_id,
                                              region.start_vpn + p)
                t0 = ctx.sim.now
                yield from ctx.touch(region, p)
                latencies.append(ctx.sim.now - t0)
        box["done"] = True

    _run_program(platform, client_index, bench, box)
    # Drop the warm-up round (first touch of each page includes the
    # initial export setup; the paper measures cache-hit faults).
    sample = latencies[npages:] if rounds > 1 else latencies
    sample = sample or latencies
    return {
        "mean_ns": sum(sample) / len(sample),
        "min_ns": min(sample),
        "max_ns": max(sample),
        "count": len(sample),
    }


# ---------------------------------------------------------------------------
# RPC latency (Section 6)
# ---------------------------------------------------------------------------

def measure_rpc(system: HiveSystem, queued: bool = False,
                iterations: int = 256) -> Dict[str, float]:
    """Null RPC latency, interrupt-level or queued."""
    client = system.cell(system.registry.all_cell_ids()[0])
    target = system.registry.all_cell_ids()[1]
    op = "ping_queued" if queued else "ping"
    latencies: List[int] = []
    box: dict = {}

    def bench():
        for _ in range(iterations):
            t0 = client.sim.now
            yield from client.rpc.call(target, op, {})
            latencies.append(client.sim.now - t0)
        box["done"] = True

    proc = client.sim.process(bench(), name="rpcbench")
    client.sim.run_until_event(proc,
                               deadline=client.sim.now + 600_000_000_000)
    if "done" not in box:
        raise TimeoutError("rpc bench did not finish")
    return {
        "mean_ns": sum(latencies) / len(latencies),
        "min_ns": min(latencies),
        "max_ns": max(latencies),
        "count": len(latencies),
    }


# ---------------------------------------------------------------------------
# careful reference (Section 4.1)
# ---------------------------------------------------------------------------

def measure_careful_reference(system: HiveSystem,
                              iterations: int = 256) -> Dict[str, float]:
    """careful_on..careful_off latency for the clock-monitoring read.

    The watched cell's clock word is written by its owner every tick, so
    each monitored read misses in the cache (the 0.7 us the paper
    attributes to the miss).
    """
    ids = system.registry.all_cell_ids()
    reader = system.cell(ids[0])
    watched = system.cell(ids[1])
    latencies: List[int] = []
    box: dict = {}

    def bench():
        for _ in range(iterations):
            # The watched cell dirties its clock line (its tick).
            watched.machine.coherence.write(watched.cpu_ids[0],
                                            watched.heartbeat_addr)
            t0 = reader.sim.now
            yield from reader.careful.read_word(watched.kernel_id,
                                                watched.heartbeat_addr)
            latencies.append(reader.sim.now - t0)
        box["done"] = True

    proc = reader.sim.process(bench(), name="carefulbench")
    reader.sim.run_until_event(proc,
                               deadline=reader.sim.now + 60_000_000_000)
    if "done" not in box:
        raise TimeoutError("careful bench did not finish")
    return {
        "mean_ns": sum(latencies) / len(latencies),
        "count": len(latencies),
    }


# ---------------------------------------------------------------------------
# file operations (Table 7.3)
# ---------------------------------------------------------------------------

def measure_file_ops(system: HiveSystem, remote: bool) -> Dict[str, float]:
    """4 MB read, 4 MB write/extend, and open latency (warm cache)."""
    platform = Platform(system)
    system.namespace.mount("/mb", platform.kernels[0].node_ids[0])
    read_path = "/mb/read4mb.dat"
    _make_file(platform, read_path, MB4)
    client_index = 1 if remote else 0
    out: Dict[str, float] = {}
    box: dict = {}

    def bench(ctx):
        # open()
        t0 = ctx.sim.now
        fd = yield from ctx.open(read_path, "r")
        out["open_ns"] = ctx.sim.now - t0
        # 4 MB read
        t0 = ctx.sim.now
        data = yield from ctx.read(fd, MB4)
        out["read4mb_ns"] = ctx.sim.now - t0
        assert len(data) == MB4
        yield from ctx.close(fd)
        # 4 MB write/extend
        write_path = "/mb/write4mb.dat"
        fd = yield from ctx.open(write_path, "w", create=True)
        payload = pattern_bytes(write_path, MB4)
        t0 = ctx.sim.now
        yield from ctx.write(fd, payload)
        out["write4mb_ns"] = ctx.sim.now - t0
        yield from ctx.close(fd)
        yield from ctx.unlink(write_path)
        box["done"] = True

    _run_program(platform, client_index, bench, box)
    return out


# ---------------------------------------------------------------------------
# the anchor sweep (what ``repro micro`` prints and exports)
# ---------------------------------------------------------------------------

def collect_anchors(seed: int = 1995) -> Dict[str, Dict[str, float]]:
    """All microbenchmark anchors as ``name -> {paper, measured, unit}``.

    One entry per row of the ``repro micro`` table; the machine-readable
    form telemetry export writes to ``BENCH_pr2.json``.
    """
    local = measure_page_fault(boot_two_cell(seed), remote=False,
                               nfaults=128)
    remote = measure_page_fault(boot_two_cell(seed), remote=True,
                                nfaults=128)
    system = boot_two_cell(seed)
    rpc = measure_rpc(system)
    rpc_q = measure_rpc(system, queued=True)
    careful = measure_careful_reference(system)
    ops = measure_file_ops(boot_two_cell(seed), remote=False)
    return {
        "local_page_fault": {
            "paper": 6.9, "measured": round(local["mean_ns"] / 1e3, 2),
            "unit": "us"},
        "remote_page_fault": {
            "paper": 50.7, "measured": round(remote["mean_ns"] / 1e3, 2),
            "unit": "us"},
        "null_rpc": {
            "paper": 7.2, "measured": round(rpc["mean_ns"] / 1e3, 2),
            "unit": "us"},
        "null_queued_rpc": {
            "paper": 34.0, "measured": round(rpc_q["mean_ns"] / 1e3, 2),
            "unit": "us"},
        "careful_reference": {
            "paper": 1.16, "measured": round(careful["mean_ns"] / 1e3, 3),
            "unit": "us"},
        "open_local": {
            "paper": 148, "measured": round(ops["open_ns"] / 1e3, 1),
            "unit": "us"},
        "read_4mb_local": {
            "paper": 65.0, "measured": round(ops["read4mb_ns"] / 1e6, 1),
            "unit": "ms"},
    }


# ---------------------------------------------------------------------------
# firewall overhead (Section 4.2)
# ---------------------------------------------------------------------------

def measure_firewall_overhead(remote_writes: int = 4096,
                              seed: int = 1995) -> Dict[str, float]:
    """Average remote-write miss latency with the check on vs off."""
    out: Dict[str, float] = {}
    for enabled in (True, False):
        params = HardwareParams(num_nodes=2)
        sim = Simulator()
        machine = Machine(sim, MachineConfig(params=params, seed=seed,
                                             firewall_enabled=enabled))
        # Grant node 0 write access to a window of node 1's memory, then
        # stream writes: every line is a remote write miss.
        fw = machine.memory.firewalls[1]
        base_frame = params.pages_per_node
        npages = remote_writes * params.cache_line_size // params.page_size + 1
        for frame in range(base_frame, base_frame + npages):
            fw.grant_node(frame, 1, 0)
        base_addr = base_frame * params.page_size
        for i in range(remote_writes):
            machine.coherence.write(0, base_addr + i * params.cache_line_size)
        stats = machine.coherence.stats
        key = "avg_remote_write_miss_ns_fw" if enabled else \
            "avg_remote_write_miss_ns_nofw"
        out[key] = stats.avg_remote_write_miss_ns
    out["overhead_pct"] = 100.0 * (
        out["avg_remote_write_miss_ns_fw"]
        / out["avg_remote_write_miss_ns_nofw"] - 1.0)
    return out
