"""Configurable multiprogrammed workload generator.

The paper targets "compute server workloads where there are multiple
independent processes, the predominant situation today".  This generator
produces such a mix on demand: each job interleaves compute bursts with a
configurable blend of file creation/read/write (local and cross-cell),
anonymous memory growth, forks, and signals — useful for soak tests,
custom experiments, and as a template for downstream users' workloads.

All randomness comes from named streams keyed by the job id, so a given
``SyntheticWorkload`` configuration replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.sim.rng import RandomStreams
from repro.unix.errors import FileError, RpcTimeout
from repro.unix.fs import PAGE
from repro.workloads.base import Platform, WorkloadResult, pattern_bytes


@dataclass
class SyntheticConfig:
    """Knobs for the generated mix."""

    jobs: int = 8
    rounds_per_job: int = 10
    compute_per_round_ns: int = 20_000_000
    #: probability weights per round (normalized internally)
    w_file_write: float = 0.35
    w_file_read: float = 0.25
    w_anon_touch: float = 0.25
    w_fork_child: float = 0.10
    w_noop: float = 0.05
    file_pages: int = 2
    anon_pages_per_touch: int = 4
    #: directory each job writes under; round-robin over these spreads
    #: traffic across serving cells
    directories: List[str] = field(default_factory=lambda: [
        "/synth/a", "/synth/b", "/synth/c"])
    seed: int = 424242


class SyntheticWorkload:
    """Generate-and-run a reproducible multiprogrammed mix."""

    name = "synthetic"

    def __init__(self, config: Optional[SyntheticConfig] = None):
        self.config = config or SyntheticConfig()
        self.rng = RandomStreams(self.config.seed)
        self.expected_outputs: Dict[str, bytes] = {}
        self.ops_run: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.ops_run[op] = self.ops_run.get(op, 0) + 1

    def _pick_op(self, job: int, round_: int) -> str:
        cfg = self.config
        weights = [("file_write", cfg.w_file_write),
                   ("file_read", cfg.w_file_read),
                   ("anon_touch", cfg.w_anon_touch),
                   ("fork_child", cfg.w_fork_child),
                   ("noop", cfg.w_noop)]
        total = sum(w for _, w in weights)
        roll = self.rng.uniform(f"op.{job}", 0, total)
        acc = 0.0
        for op, w in weights:
            acc += w
            if roll <= acc:
                return op
        return "noop"

    def job_program(self, job: int, results: dict):
        workload = self
        cfg = self.config

        def child(ctx):
            yield from ctx.compute(cfg.compute_per_round_ns // 2)

        def prog(ctx):
            anon = yield from ctx.map_anon(
                cfg.rounds_per_job * cfg.anon_pages_per_touch + 1)
            anon_next = 0
            written: List[str] = []
            for round_ in range(cfg.rounds_per_job):
                op = workload._pick_op(job, round_)
                try:
                    if op == "file_write":
                        directory = cfg.directories[
                            (job + round_) % len(cfg.directories)]
                        path = f"{directory}/j{job}_r{round_}"
                        data = pattern_bytes(path, cfg.file_pages * PAGE)
                        fd = yield from ctx.open(path, "w", create=True)
                        yield from ctx.write(fd, data)
                        yield from ctx.close(fd)
                        workload.expected_outputs[path] = data
                        written.append(path)
                    elif op == "file_read" and written:
                        path = written[round_ % len(written)]
                        fd = yield from ctx.open(path, "r")
                        yield from ctx.read(fd, cfg.file_pages * PAGE)
                        yield from ctx.close(fd)
                    elif op == "anon_touch":
                        # One batched reference for the whole run of
                        # pages; already-mapped pages resolve as a
                        # single coherence batch, first touches fall
                        # back to the per-page fault path.
                        yield from ctx.touch_many(
                            anon, anon_next, cfg.anon_pages_per_touch,
                            write=True)
                        anon_next += cfg.anon_pages_per_touch
                    elif op == "fork_child":
                        pid = yield from ctx.spawn(child,
                                                   f"synth{job}.c{round_}")
                        yield from ctx.waitpid(pid)
                    workload._count(op)
                except (FileError, RpcTimeout):
                    # A serving cell died: the job presses on, like the
                    # independent processes the paper's workloads model.
                    workload._count("io_error")
                yield from ctx.compute(cfg.compute_per_round_ns)
            results[job] = ctx.sim.now

        return prog

    def run(self, platform: Platform,
            deadline_ns: int = 600_000_000_000) -> WorkloadResult:
        sim = platform.sim
        start = sim.now
        results: dict = {}
        threads = []
        for job in range(self.config.jobs):
            _proc, thread = platform.spawn_init(
                job, self.job_program(job, results), f"synth{job}")
            threads.append(thread.sim_process)
        sim.run_until_event(sim.all_of(threads),
                            deadline=start + deadline_ns)
        finished = [p for p in threads if p.triggered]
        result = WorkloadResult(
            name=self.name, started_ns=start, finished_ns=sim.now,
            jobs_completed=len(results),
            jobs_failed=self.config.jobs - len(results))
        for path, expected in self.expected_outputs.items():
            errors = platform.verify_file(path, expected)
            result.output_errors.extend(
                e for e in errors if "unavailable" not in e)
        return result
