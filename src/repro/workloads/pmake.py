"""pmake: parallel compilation (Table 7.1 — "11 files of GnuChess 3.1,
four at a time").

The model reproduces the structure the paper's measurements depend on:

* a make driver forks compile jobs, at most four concurrently, spreading
  them over the machine (over the cells, on Hive);
* every compile maps a read-shared header set and its own source file,
  touching their pages (these are the page-cache-hit faults: ~8,935 over
  the run, of which ~4,946 go remote on four cells);
* every compile writes an intermediate file under ``/tmp`` — served by a
  single cell, which therefore shows the peak count of remotely-writable
  pages (Section 4.2: average ~15 per cell, max 42 on the /tmp server) —
  then an object file next to its source;
* each compile burns CPU between I/O phases (compilation is mostly
  compute); total CPU demand is sized so four processors finish in about
  the paper's 5.77 s.

The file cache is warmed before the timed run, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.hardware.params import NS_PER_MS
from repro.sim.engine import Event
from repro.unix.fs import PAGE
from repro.workloads.base import Platform, WorkloadResult, pattern_bytes

#: compile jobs (source files) and concurrency from Table 7.1
NUM_FILES = 11
CONCURRENCY = 4

HEADER_PATH = "/usr/include/chess.h"
HEADER_PAGES = 120          # a chunky shared header set (~0.5 MB)
#: the compiler itself: cpp/cc1/as text pages, demand-paged read-only by
#: every job (the biggest source of shared page-cache faults).
CC_BINARY_PATH = "/usr/lib/cc1"
CC_BINARY_PAGES = 300
#: system include files each compile opens and reads individually — the
#: long syscall tail of a real cpp run.
INCLUDE_COUNT = 120
INCLUDE_PAGES = 1
SOURCE_PAGES = 28           # ~112 KB per source file
TMP_PAGES = 8               # intermediate file per compile
OBJ_PAGES = 10              # output object file
#: per-job page touches of its private anonymous working set (parser
#: heaps etc.); always local.
ANON_PAGES = 260
#: CPU time per compile job: 11 jobs over 4 CPUs, sized so the IRIX
#: baseline (with all the kernel time above) lands near 5.77 s.
COMPUTE_PER_JOB_NS = 1_835 * NS_PER_MS
#: compute is interleaved with faults in phases
PHASES = 8


class PmakeWorkload:
    """The parallel-make workload."""

    name = "pmake"

    def __init__(self, src_dir: str = "/usr/src", tmp_dir: str = "/tmp",
                 num_files: int = NUM_FILES,
                 concurrency: int = CONCURRENCY,
                 compute_per_job_ns: int = COMPUTE_PER_JOB_NS):
        self.src_dir = src_dir
        self.tmp_dir = tmp_dir
        self.num_files = num_files
        self.concurrency = concurrency
        self.compute_per_job_ns = compute_per_job_ns
        self.expected_outputs: Dict[str, bytes] = {}

    # -- file layout ------------------------------------------------------

    def source_path(self, i: int) -> str:
        return f"{self.src_dir}/gnuchess{i}.c"

    @staticmethod
    def include_path(i: int) -> str:
        return f"/usr/include/sys/h{i}.h"

    def obj_path(self, i: int) -> str:
        return f"{self.src_dir}/gnuchess{i}.o"

    def tmp_path(self, i: int) -> str:
        return f"{self.tmp_dir}/cc.{i}.s"

    # -- setup phase (untimed): create sources + warm the cache -------------

    def setup_program(self, platform: Platform):
        workload = self

        def setup(ctx):
            for path, npages in (
                    [(HEADER_PATH, HEADER_PAGES),
                     (CC_BINARY_PATH, CC_BINARY_PAGES)]
                    + [(workload.include_path(i), INCLUDE_PAGES)
                       for i in range(INCLUDE_COUNT)]
                    + [(workload.source_path(i), SOURCE_PAGES)
                       for i in range(workload.num_files)]):
                fd = yield from ctx.open(path, "w", create=True)
                yield from ctx.write(fd, pattern_bytes(path, npages * PAGE))
                yield from ctx.close(fd)
        return setup

    def warm_cache(self, platform: Platform) -> None:
        """Pull sources/headers into their home kernels' page caches."""
        procs = []
        for kernel in platform.live_kernels():
            paths = ([HEADER_PATH, CC_BINARY_PATH]
                     + [self.include_path(i) for i in range(INCLUDE_COUNT)]
                     + [self.source_path(i)
                        for i in range(self.num_files)])
            local = [p for p in paths if kernel.local_fs_for(p) is not None]

            def warmer(kern, targets):
                def run():
                    for path in targets:
                        yield from kern.warm_file(path)
                return run()

            if local:
                procs.append(platform.sim.process(warmer(kernel, local),
                                                  name="warm"))
        if procs:
            platform.sim.run_until_event(
                platform.sim.all_of(procs),
                deadline=platform.sim.now + 60_000_000_000)

    # -- one compile job ----------------------------------------------------------

    def compile_program(self, index: int, results: dict):
        workload = self

        def compile_job(ctx):
            phase_compute = workload.compute_per_job_ns // PHASES
            # Demand-page the compiler text, map the shared headers
            # (read-only) and this job's source.
            cc = yield from ctx.map_file(CC_BINARY_PATH, writable=False)
            hdr = yield from ctx.map_file(HEADER_PATH, writable=False)
            src = yield from ctx.map_file(workload.source_path(index),
                                          writable=False)
            scratch = yield from ctx.map_anon(ANON_PAGES)
            # The intermediate (.s) and object files stay open for the
            # whole compile and are emitted progressively — so their
            # pages' firewall write grants persist across the job, which
            # is what the Section 4.2 page-count sampling observes.
            tmp_path = workload.tmp_path(index)
            tmp_data = pattern_bytes(tmp_path, TMP_PAGES * PAGE)
            tmp_fd = yield from ctx.open(tmp_path, "w", create=True)
            obj_path = workload.obj_path(index)
            obj_data = pattern_bytes(obj_path, OBJ_PAGES * PAGE)
            obj_fd = yield from ctx.open(obj_path, "w", create=True)
            # The cpp pass: open and read every system include.  Each
            # include is first probed in the (empty) local search
            # directory — a failed open that still pays full path lookup
            # — before the hit in /usr/include/sys, like a real -I path.
            from repro.unix.errors import FileError
            inc_per_phase = max(1, INCLUDE_COUNT // PHASES)
            cc_step = max(1, CC_BINARY_PAGES // PHASES)
            hdr_step = max(1, HEADER_PAGES // PHASES)
            src_step = max(1, SOURCE_PAGES // PHASES)
            anon_step = max(1, ANON_PAGES // PHASES)
            for phase in range(PHASES):
                for i in range(phase * inc_per_phase,
                               min((phase + 1) * inc_per_phase,
                                   INCLUDE_COUNT)):
                    try:
                        yield from ctx.open(
                            f"/usr/src/local-inc/h{i}.h", "r")
                    except FileError:
                        pass  # search-path miss
                    fd = yield from ctx.open(workload.include_path(i), "r")
                    yield from ctx.read(fd, INCLUDE_PAGES * PAGE)
                    yield from ctx.close(fd)
                for p in range(phase * cc_step,
                               min((phase + 1) * cc_step, cc.npages)):
                    yield from ctx.touch(cc, p)
                for p in range(phase * hdr_step,
                               min((phase + 1) * hdr_step, hdr.npages)):
                    yield from ctx.touch(hdr, p)
                for p in range(phase * src_step,
                               min((phase + 1) * src_step, src.npages)):
                    yield from ctx.touch(src, p)
                # Emit this phase's slice of the .s and .o files.
                lo = phase * TMP_PAGES * PAGE // PHASES
                hi = (phase + 1) * TMP_PAGES * PAGE // PHASES
                if hi > lo:
                    yield from ctx.write(tmp_fd, tmp_data[lo:hi])
                lo = phase * OBJ_PAGES * PAGE // PHASES
                hi = (phase + 1) * OBJ_PAGES * PAGE // PHASES
                if hi > lo:
                    yield from ctx.write(obj_fd, obj_data[lo:hi])
                # Anonymous working-set growth is spread through the
                # compute (a compiler allocates continuously), so anon
                # faults occur every few milliseconds of CPU time — the
                # rate the Table 7.4 address-map detection latency
                # depends on.
                anon_pages = list(range(phase * anon_step,
                                        min((phase + 1) * anon_step,
                                            ANON_PAGES)))
                nchunks = 24
                chunk = max(1, len(anon_pages) // nchunks)
                slice_ns = phase_compute // max(
                    1, (len(anon_pages) + chunk - 1) // chunk)
                for i in range(0, len(anon_pages), chunk):
                    for p in anon_pages[i:i + chunk]:
                        yield from ctx.touch(scratch, p, write=True)
                    yield from ctx.compute(slice_ns)
            yield from ctx.close(obj_fd)
            yield from ctx.close(tmp_fd)
            # Re-read the intermediate (the assembler pass), then drop it.
            fd = yield from ctx.open(tmp_path, "r")
            yield from ctx.read(fd, TMP_PAGES * PAGE)
            yield from ctx.close(fd)
            yield from ctx.unlink(tmp_path)
            workload.expected_outputs[obj_path] = obj_data
            results[index] = ctx.sim.now
        return compile_job

    # -- the driver --------------------------------------------------------------

    def driver_program(self, platform: Platform, result_box: dict):
        workload = self

        def driver(ctx):
            from repro.unix.errors import FileError, RpcTimeout

            results: dict = {}
            running: List[int] = []
            next_job = 0
            completed = 0
            failed = 0
            while completed + failed < workload.num_files:
                while (len(running) < workload.concurrency
                       and next_job < workload.num_files):
                    target = None
                    if platform.is_hive and platform.num_placements > 1:
                        target = platform.kernel_for(next_job).kernel_id
                        if target == ctx.kernel.kernel_id:
                            target = None
                    try:
                        pid = yield from ctx.spawn(
                            workload.compile_program(next_job, results),
                            name=f"cc{next_job}", target_cell=target)
                    except (FileError, RpcTimeout):
                        # Target cell failed mid-spawn: rerun locally
                        # (make retries the lost job).
                        pid = yield from ctx.spawn(
                            workload.compile_program(next_job, results),
                            name=f"cc{next_job}")
                    running.append(pid)
                    next_job += 1
                pid = running.pop(0)
                status = yield from ctx.waitpid(pid)
                if status == 0:
                    completed += 1
                else:
                    failed += 1
            result_box["completed"] = completed
            result_box["failed"] = failed
            result_box["finished_ns"] = ctx.sim.now
        return driver

    # -- full run -------------------------------------------------------------------

    def run(self, platform: Platform,
            deadline_ns: int = 600_000_000_000) -> WorkloadResult:
        """Set up, warm the cache, run timed, verify outputs."""
        sim = platform.sim
        _proc, thread = platform.spawn_init(
            0, self.setup_program(platform), "pmake-setup")
        sim.run_until_event(thread.sim_process,
                            deadline=sim.now + 120_000_000_000)
        if thread.sim_process.is_alive:
            raise TimeoutError("pmake setup did not finish")
        self.warm_cache(platform)

        start = sim.now
        box: dict = {}
        _proc, driver_thread = platform.spawn_init(
            0, self.driver_program(platform, box), "pmake-driver")
        sim.run_until_event(driver_thread.sim_process,
                            deadline=start + deadline_ns)
        if "finished_ns" not in box:
            raise TimeoutError(f"pmake driver still running at {sim.now}")
        result = WorkloadResult(
            name=self.name, started_ns=start, finished_ns=box["finished_ns"],
            jobs_completed=box["completed"], jobs_failed=box["failed"])
        for path, expected in self.expected_outputs.items():
            result.output_errors.extend(platform.verify_file(path, expected))
        return result
