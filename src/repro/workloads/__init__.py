"""Workloads for the evaluation (Table 7.1 of the paper).

Three synthetic workloads reproduce the *sharing patterns* of the
originals, which is what the fault-containment and firewall results depend
on:

* :mod:`repro.workloads.pmake` — parallel compilation (11 files, four at
  a time): many short processes spread across cells, read-shared sources
  and headers, write-shared intermediate files in ``/tmp``;
* :mod:`repro.workloads.ocean` — Splash-2-style grid simulation: one
  spanning task whose data segment is write-shared by all threads;
* :mod:`repro.workloads.raytrace` — rendering: a read-mostly scene built
  by a parent and shared copy-on-write with workers forked across cells;
* :mod:`repro.workloads.micro` — the kernel-operation microbenchmarks of
  Tables 5.2 and 7.3 and Sections 4.1/6;
* :mod:`repro.workloads.sessions` — million-session open-loop traffic
  frontend: heavy-tailed arrivals against per-cell FCFS server pools,
  with real coherence coupling and sessions-lost-per-fault accounting.

All workloads run unchanged on the IRIX baseline (one kernel) and any
Hive configuration through the :class:`~repro.workloads.base.Platform`
adapter.
"""

from repro.workloads.base import Platform, WorkloadResult
from repro.workloads.ocean import OceanWorkload
from repro.workloads.pmake import PmakeWorkload
from repro.workloads.raytrace import RaytraceWorkload
from repro.workloads.sessions import (SessionReport, SessionTrafficConfig,
                                      run_session_traffic, run_sessions)
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload

__all__ = [
    "OceanWorkload",
    "Platform",
    "PmakeWorkload",
    "RaytraceWorkload",
    "SessionReport",
    "SessionTrafficConfig",
    "SyntheticConfig",
    "SyntheticWorkload",
    "WorkloadResult",
    "run_session_traffic",
    "run_sessions",
]
