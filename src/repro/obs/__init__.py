"""Observability: the flight recorder, metric aggregation, exporters."""

from repro.obs.export import (
    render_fault_timeline,
    to_chrome_trace,
    to_jsonl,
    write_bench_summary,
    write_telemetry,
)
from repro.obs.metrics import render_snapshot, snapshot_system
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    Span,
    TelemetryEvent,
    attach_flight_recorder,
)

__all__ = [
    "NULL_RECORDER",
    "FlightRecorder",
    "NullRecorder",
    "Span",
    "TelemetryEvent",
    "attach_flight_recorder",
    "render_fault_timeline",
    "render_snapshot",
    "snapshot_system",
    "to_chrome_trace",
    "to_jsonl",
    "write_bench_summary",
    "write_telemetry",
]
