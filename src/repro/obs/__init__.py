"""Observability: the flight recorder, metric aggregation, exporters,
availability accounting, and hot-path tier profiling."""

from repro.obs.availability import (
    availability_from_dicts,
    availability_report,
    merge_availability,
)
from repro.obs.export import (
    audit_to_chrome_trace,
    load_json,
    load_jsonl,
    open_artifact,
    render_fault_timeline,
    to_chrome_trace,
    to_jsonl,
    write_bench_summary,
    write_telemetry,
)
from repro.obs.metrics import render_snapshot, snapshot_system
from repro.obs.profile import merge_tier_snapshots, tier_snapshot
from repro.obs.provenance import (
    NULL_PROVENANCE,
    NullProvenance,
    ProvenanceTracer,
    attach_provenance,
    merge_audits,
    render_audit_markdown,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    Span,
    TelemetryEvent,
    attach_flight_recorder,
)
from repro.obs.watchdog import (
    InvariantWatchdog,
    attach_watchdog,
    maybe_attach_watchdog,
    watchdog_enabled,
)

__all__ = [
    "NULL_PROVENANCE",
    "NULL_RECORDER",
    "FlightRecorder",
    "InvariantWatchdog",
    "NullProvenance",
    "NullRecorder",
    "ProvenanceTracer",
    "Span",
    "TelemetryEvent",
    "attach_flight_recorder",
    "attach_provenance",
    "attach_watchdog",
    "audit_to_chrome_trace",
    "availability_from_dicts",
    "availability_report",
    "load_json",
    "load_jsonl",
    "maybe_attach_watchdog",
    "open_artifact",
    "merge_audits",
    "merge_availability",
    "merge_tier_snapshots",
    "render_audit_markdown",
    "render_fault_timeline",
    "render_snapshot",
    "snapshot_system",
    "tier_snapshot",
    "to_chrome_trace",
    "to_jsonl",
    "watchdog_enabled",
    "write_bench_summary",
    "write_telemetry",
]
