"""Observability: the flight recorder, metric aggregation, exporters,
availability accounting, and hot-path tier profiling."""

from repro.obs.availability import (
    availability_from_dicts,
    availability_report,
    merge_availability,
)
from repro.obs.export import (
    render_fault_timeline,
    to_chrome_trace,
    to_jsonl,
    write_bench_summary,
    write_telemetry,
)
from repro.obs.metrics import render_snapshot, snapshot_system
from repro.obs.profile import merge_tier_snapshots, tier_snapshot
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    Span,
    TelemetryEvent,
    attach_flight_recorder,
)

__all__ = [
    "NULL_RECORDER",
    "FlightRecorder",
    "NullRecorder",
    "Span",
    "TelemetryEvent",
    "attach_flight_recorder",
    "availability_from_dicts",
    "availability_report",
    "merge_availability",
    "merge_tier_snapshots",
    "render_fault_timeline",
    "render_snapshot",
    "snapshot_system",
    "tier_snapshot",
    "to_chrome_trace",
    "to_jsonl",
    "write_bench_summary",
    "write_telemetry",
]
