"""Fault-provenance tracing and the containment audit.

Hive's central claim is *fault containment* (Section 2): a fault in one
cell must not corrupt work in healthy cells, because every intercell
channel — RPC over SIPS, careful references, firewall-guarded writes,
loaned/borrowed frames, pfdat imports — either blocks the damage or the
recovery rounds confine it.  This module turns that claim into
inspectable evidence.  When a fault is injected, the faulting cell is
*tainted* (deterministic ids ``t0``, ``t1``, ...) and every subsequent
intercell interaction involving it is recorded and classified:

``blocked``
    a defense stopped the interaction outright — a firewall or bus
    error on a wild write, a careful-reference sanity check
    (alignment/range/type-tag/bus-error), an RPC sanity reject or
    timeout.  These are the *near-misses* of Table 7.4's defenses.
``discarded``
    the interaction was accepted at the time but recovery neutralised
    it — the tainted page was preemptively discarded, the import was
    dropped, or a recovery round confirmed the sick cell dead after
    the interaction (the paper's pessimistic-discard policy).
``absorbed``
    a healthy cell consumed tainted state that no defense blocked and
    no recovery action cleaned: a containment breach.

Interactions that represent *actual memory damage* (wild writes that
landed) are ``hard``: only an explicit page discard resolves them; the
recovery-round fallback is not enough, because the damaged frame
outlives the round unless it was dropped.

Determinism: taint ids, interaction sequence numbers, and timestamps
all derive from the simulation; :meth:`ProvenanceTracer.audit_report`
is a pure function of the run, so same-seed runs produce byte-identical
audit JSON and campaign shards merge associatively (the same contract
as availability ledgers).

Overhead discipline: the default :data:`NULL_PROVENANCE` costs one
attribute load and one ``enabled`` branch per instrumented site, and an
attached tracer short-circuits every hook on an empty-taint check until
the first fault fires.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: interaction channels (also the DAG edge labels)
CH_RPC = "rpc"
CH_CAREFUL = "careful"
CH_WILDWRITE = "wildwrite"
CH_PAGE = "page"
CH_FIREWALL = "firewall"
CH_EXPOSURE = "exposure"

#: verdicts
V_BLOCKED = "blocked"
V_DISCARDED = "discarded"
V_ABSORBED = "absorbed"
V_PENDING = "pending"

AUDIT_SCHEMA = "hive-audit-v1"


class NullProvenance:
    """Tracing disabled: every hook is a no-op.

    Hot paths guard on ``prov.enabled`` and skip the call entirely, so
    the null default costs one attribute load per instrumented site.
    """

    enabled = False

    def is_tainted(self, cell_id) -> bool:
        return False

    def active_taint(self) -> Optional[str]:
        return None

    def fault_injected(self, cell_id, kind, **attrs) -> None:
        pass

    def careful_blocked(self, remote_cell, local_cell, check, detail) -> None:
        pass

    def careful_ok(self, remote_cell, local_cell) -> None:
        pass

    def rpc_blocked(self, caller_cell, dst_cell, op, defense) -> None:
        pass

    def rpc_reply(self, caller_cell, dst_cell, op) -> None:
        pass

    def rpc_served(self, src_cell, server_cell, op, rejected=None) -> None:
        pass

    def wild_write(self, sick_cell, home_cell, frame, landed,
                   defense=None) -> None:
        pass

    def page_imported(self, importer_cell, data_home, frame) -> None:
        pass

    def page_exported(self, owner_cell, client_cell, frame,
                      writable) -> None:
        pass

    def write_granted(self, owner_cell, client_cell, frame) -> None:
        pass

    def frames_loaned(self, owner_cell, borrower_cell, frames) -> None:
        pass

    def sips_sent(self, src_node, dst_node, kind) -> None:
        pass

    def page_discarded(self, cell_id, frame, dead_cell) -> None:
        pass

    def import_dropped(self, cell_id, frame, data_home) -> None:
        pass

    def process_killed(self, cell_id, pid, reason) -> None:
        pass


NULL_PROVENANCE = NullProvenance()


class ProvenanceTracer:
    """Records tainted intercell interactions for one system.

    Interactions are deduplicated on ``(taint, channel, kind, src, dst,
    frame, op, defense)``; repeats bump the record's ``n`` and
    ``last_ns`` so steady-state traffic (retried careful reads, RPC
    timeouts to a dead cell) stays bounded while counts remain exact.
    """

    enabled = True

    def __init__(self, sim, recorder=None):
        self.sim = sim
        self._rec = recorder  # optional FlightRecorder for taint.* events
        self._registry = None  # set by attach_provenance
        self._system = None
        self.faults: List[Dict[str, Any]] = []
        self._tainted_cells: Dict[int, str] = {}
        self._tainted_frames: Dict[int, str] = {}
        self._records: List[Dict[str, Any]] = []
        self._by_key: Dict[Tuple, Dict[str, Any]] = {}
        # (cell, frame) -> how recovery dropped the page
        self._discards: Dict[Tuple[int, int], str] = {}
        self.process_kills: List[Dict[str, Any]] = []
        # taint id -> completion time of the recovery round that
        # confirmed the tainted cell dead
        self._recovered: Dict[str, int] = {}
        self.sips_tainted_sends: Dict[str, int] = {}

    # -- taint origin ---------------------------------------------------

    def is_tainted(self, cell_id) -> bool:
        return cell_id in self._tainted_cells

    def active_taint(self) -> Optional[str]:
        if not self.faults:
            return None
        return self.faults[-1]["taint"]

    def fault_injected(self, cell_id, kind, site=None, mode=None,
                       trigger=None) -> None:
        """Taint ``cell_id`` and snapshot its current exposure.

        The snapshot records what healthy cells have already accepted
        from the now-sick cell: write grants into their frames and
        pages imported from its memory.  Those are the interactions a
        post-hoc observer could not reconstruct, because they predate
        the fault.
        """
        taint = f"t{len(self.faults)}"
        self.faults.append({
            "taint": taint,
            "cell": cell_id,
            "kind": kind,
            "site": site,
            "mode": mode,
            "trigger": trigger,
            "time_ns": self.sim.now,
        })
        self._tainted_cells[cell_id] = taint
        rec = self._rec
        if rec is not None and rec.enabled:
            rec.event("taint.origin", "taint", cell=cell_id, taint=taint,
                      kind=kind, site=site, mode=mode)
        self._snapshot_exposure(cell_id, taint)

    def _snapshot_exposure(self, sick_cell: int, taint: str) -> None:
        system = self._system
        if system is None:
            return
        for cell in system.cells:
            if cell.kernel_id == sick_cell or not cell.alive:
                continue
            for pf in cell.firewall_mgr.frames_writable_by(sick_cell):
                self._accept(CH_EXPOSURE, "writable_grant", sick_cell,
                             cell.kernel_id, frame=pf.frame, taint=taint)
            for pf in cell.pfdats.imported_from_cell(sick_cell):
                self._accept(CH_EXPOSURE, "import", sick_cell,
                             cell.kernel_id, frame=pf.frame, taint=taint)

    # -- recording ------------------------------------------------------

    def _record(self, verdict, channel, kind, src, dst, frame=None,
                op=None, defense=None, hard=False, taint=None):
        if taint is None:
            taint = self._tainted_cells.get(src) or \
                self._tainted_cells.get(dst) or self.active_taint()
        key = (taint, channel, kind, src, dst, frame, op, defense)
        entry = self._by_key.get(key)
        now = self.sim.now
        if entry is not None:
            entry["n"] += 1
            entry["last_ns"] = now
            return entry
        entry = {
            "seq": len(self._records),
            "taint": taint,
            "channel": channel,
            "kind": kind,
            "src": src,
            "dst": dst,
            "frame": frame,
            "op": op,
            "verdict": verdict,
            "defense": defense,
            "hard": hard,
            "n": 1,
            "first_ns": now,
            "last_ns": now,
        }
        self._by_key[key] = entry
        self._records.append(entry)
        if verdict == V_BLOCKED:
            rec = self._rec
            if rec is not None and rec.enabled:
                rec.event("taint.blocked", "taint", cell=dst, src=src,
                          taint=taint, channel=channel, kind=kind,
                          defense=defense, frame=frame, op=op)
        return entry

    def _blocked(self, channel, kind, src, dst, defense, frame=None,
                 op=None):
        return self._record(V_BLOCKED, channel, kind, src, dst,
                            frame=frame, op=op, defense=defense)

    def _accept(self, channel, kind, src, dst, frame=None, op=None,
                hard=False, taint=None):
        return self._record(V_PENDING, channel, kind, src, dst,
                            frame=frame, op=op, hard=hard, taint=taint)

    # -- hooks: careful references --------------------------------------

    def careful_blocked(self, remote_cell, local_cell, check,
                        detail) -> None:
        if not self._tainted_cells:
            return
        self._blocked(CH_CAREFUL, "read", remote_cell, local_cell, check)

    def careful_ok(self, remote_cell, local_cell) -> None:
        if remote_cell not in self._tainted_cells:
            return
        self._accept(CH_CAREFUL, "read", remote_cell, local_cell)

    # -- hooks: RPC -----------------------------------------------------

    def rpc_blocked(self, caller_cell, dst_cell, op, defense) -> None:
        # Client side: a call into a tainted cell failed closed — the
        # reply was never consumed, so the taint did not cross.
        self._blocked(CH_RPC, "call", dst_cell, caller_cell, defense,
                      op=op)

    def rpc_reply(self, caller_cell, dst_cell, op) -> None:
        # Client side: a reply from a tainted cell was consumed.
        self._accept(CH_RPC, "reply", dst_cell, caller_cell, op=op)

    def rpc_served(self, src_cell, server_cell, op, rejected=None) -> None:
        # Server side: a request *from* a tainted cell was handled.
        if src_cell not in self._tainted_cells:
            return
        if rejected is not None:
            self._blocked(CH_RPC, "request", src_cell, server_cell,
                          rejected, op=op)
        else:
            self._accept(CH_RPC, "request", src_cell, server_cell, op=op)

    # -- hooks: wild writes and firewall --------------------------------

    def wild_write(self, sick_cell, home_cell, frame, landed,
                   defense=None) -> None:
        if not landed:
            self._blocked(CH_WILDWRITE, "write", sick_cell, home_cell,
                          defense, frame=frame)
            return
        taint = self._tainted_cells.get(sick_cell) or self.active_taint()
        if taint is not None:
            self._tainted_frames[frame] = taint
        if home_cell is not None and home_cell != sick_cell:
            # Actual damage to a healthy cell's memory: only an
            # explicit discard of that frame can resolve this.
            self._accept(CH_WILDWRITE, "write", sick_cell, home_cell,
                         frame=frame, hard=True, taint=taint)

    def write_granted(self, owner_cell, client_cell, frame) -> None:
        if client_cell not in self._tainted_cells:
            return
        self._accept(CH_FIREWALL, "grant", client_cell, owner_cell,
                     frame=frame)

    # -- hooks: page sharing --------------------------------------------

    def page_imported(self, importer_cell, data_home, frame) -> None:
        if not self._tainted_cells:
            return
        hard = frame in self._tainted_frames
        if data_home in self._tainted_cells or hard:
            self._accept(CH_PAGE, "import", data_home, importer_cell,
                         frame=frame, hard=hard,
                         taint=self._tainted_frames.get(frame))

    def page_exported(self, owner_cell, client_cell, frame,
                      writable) -> None:
        # Writable exports are covered by the firewall grant hook; a
        # read-only export to a tainted cell is outbound flow only.
        if writable or client_cell not in self._tainted_cells:
            return
        self._accept(CH_PAGE, "export", client_cell, owner_cell,
                     frame=frame)

    def frames_loaned(self, owner_cell, borrower_cell, frames) -> None:
        if not self._tainted_cells:
            return
        if borrower_cell in self._tainted_cells:
            # Loaned frames are fully writable by the sick borrower;
            # preemptive discard reclaims them via the reserved list.
            for frame in frames:
                self._accept(CH_PAGE, "loan", borrower_cell, owner_cell,
                             frame=frame)
        elif owner_cell in self._tainted_cells:
            # A healthy cell borrowed frames in the sick cell's memory;
            # the borrowed-from-dead discard loop resolves them.
            for frame in frames:
                self._accept(CH_PAGE, "borrow", owner_cell,
                             borrower_cell, frame=frame)

    # -- hooks: SIPS ----------------------------------------------------

    def sips_sent(self, src_node, dst_node, kind) -> None:
        if not self._tainted_cells:
            return
        registry = self._registry
        if registry is None:
            return
        try:
            src_cell = registry.cell_of_node(src_node)
        except KeyError:
            return
        if src_cell in self._tainted_cells:
            self.sips_tainted_sends[kind] = \
                self.sips_tainted_sends.get(kind, 0) + 1

    # -- hooks: recovery resolutions ------------------------------------

    def page_discarded(self, cell_id, frame, dead_cell) -> None:
        if not self._tainted_cells:
            return
        self._discards.setdefault((cell_id, frame), "page_discard")

    def import_dropped(self, cell_id, frame, data_home) -> None:
        if not self._tainted_cells:
            return
        self._discards.setdefault((cell_id, frame), "import_drop")

    def process_killed(self, cell_id, pid, reason) -> None:
        if not self._tainted_cells:
            return
        if len(self.process_kills) < 1000:
            self.process_kills.append({
                "cell": cell_id,
                "pid": pid,
                "reason": reason,
                "time_ns": self.sim.now,
                "taint": self.active_taint(),
            })

    def recovery_done(self, record) -> None:
        for cell_id in record.dead_cells:
            taint = self._tainted_cells.get(cell_id)
            if taint is not None and taint not in self._recovered:
                self._recovered[taint] = self.sim.now

    # -- audit ----------------------------------------------------------

    def _resolve(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Classify one interaction record (non-destructively)."""
        out = {k: entry[k] for k in (
            "seq", "taint", "channel", "kind", "src", "dst", "frame",
            "op", "verdict", "defense", "hard", "n", "first_ns",
            "last_ns")}
        out["resolution"] = None
        if entry["verdict"] != V_PENDING:
            return out
        how = None
        if entry["frame"] is not None:
            how = self._discards.get((entry["dst"], entry["frame"]))
        if how is None and not entry["hard"]:
            done = self._recovered.get(entry["taint"])
            if done is not None and done >= entry["first_ns"]:
                how = "recovery_round"
        if how is not None:
            out["verdict"] = V_DISCARDED
            out["resolution"] = how
        else:
            out["verdict"] = V_ABSORBED
        return out

    def audit_report(self) -> Dict[str, Any]:
        """The per-trial containment audit: JSON-safe and deterministic.

        Safe to call repeatedly; pending records are resolved into the
        report without mutating tracer state.
        """
        interactions = [self._resolve(e) for e in self._records]
        by_verdict: Dict[str, int] = {}
        by_defense: Dict[str, int] = {}
        by_channel: Dict[str, int] = {}
        resolutions: Dict[str, int] = {}
        for it in interactions:
            by_verdict[it["verdict"]] = \
                by_verdict.get(it["verdict"], 0) + it["n"]
            by_channel[it["channel"]] = \
                by_channel.get(it["channel"], 0) + it["n"]
            if it["verdict"] == V_BLOCKED and it["defense"] is not None:
                by_defense[it["defense"]] = \
                    by_defense.get(it["defense"], 0) + it["n"]
            if it["resolution"] is not None:
                resolutions[it["resolution"]] = \
                    resolutions.get(it["resolution"], 0) + it["n"]
        absorbed = by_verdict.get(V_ABSORBED, 0)
        if not self.faults:
            verdict = "no_fault"
        elif absorbed:
            verdict = "breach"
        else:
            verdict = "contained"
        return {
            "schema": AUDIT_SCHEMA,
            "faults": [dict(f) for f in self.faults],
            "interactions": interactions,
            "summary": {
                "records": len(interactions),
                "interactions": sum(it["n"] for it in interactions),
                "by_verdict": by_verdict,
                "by_defense": by_defense,
                "by_channel": by_channel,
                "resolutions": resolutions,
                "near_misses": by_verdict.get(V_BLOCKED, 0),
                "process_kills": len(self.process_kills),
                "sips_tainted_sends": dict(self.sips_tainted_sends),
            },
            "recovered": dict(self._recovered),
            "process_kills": [dict(k) for k in self.process_kills],
            "dag": _build_dag(self.faults, interactions),
            "verdict": verdict,
        }


def _build_dag(faults: List[Dict[str, Any]],
               interactions: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate interactions into a propagation DAG.

    Nodes are fault origins and cells; edges group interactions by
    ``(src, dst, channel, verdict)`` with counts and first/last times.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for fault in faults:
        fid = f"fault:{fault['taint']}"
        nodes[fid] = {"id": fid, "type": "fault", "cell": fault["cell"],
                      "kind": fault["kind"], "time_ns": fault["time_ns"]}
        cid = f"cell:{fault['cell']}"
        nodes.setdefault(cid, {"id": cid, "type": "cell",
                               "cell": fault["cell"]})
    edges: Dict[Tuple, Dict[str, Any]] = {}
    for fault in faults:
        key = (f"fault:{fault['taint']}", f"cell:{fault['cell']}",
               "inject", fault["kind"])
        edges[key] = {"src": key[0], "dst": key[1], "channel": "inject",
                      "verdict": fault["kind"], "n": 1,
                      "first_ns": fault["time_ns"],
                      "last_ns": fault["time_ns"]}
    for it in interactions:
        for cell in (it["src"], it["dst"]):
            if cell is None:
                continue
            cid = f"cell:{cell}"
            nodes.setdefault(cid, {"id": cid, "type": "cell",
                                   "cell": cell})
        key = (f"cell:{it['src']}", f"cell:{it['dst']}", it["channel"],
               it["verdict"])
        edge = edges.get(key)
        if edge is None:
            edges[key] = {"src": key[0], "dst": key[1],
                          "channel": it["channel"],
                          "verdict": it["verdict"], "n": it["n"],
                          "first_ns": it["first_ns"],
                          "last_ns": it["last_ns"]}
        else:
            edge["n"] += it["n"]
            edge["first_ns"] = min(edge["first_ns"], it["first_ns"])
            edge["last_ns"] = max(edge["last_ns"], it["last_ns"])
    return {
        "nodes": [nodes[k] for k in sorted(nodes)],
        "edges": [edges[k] for k in sorted(edges)],
    }


def attach_provenance(system, tracer: Optional[ProvenanceTracer] = None,
                      ) -> ProvenanceTracer:
    """Wire a tracer into a booted :class:`~repro.core.hive.HiveSystem`.

    Mirrors :func:`~repro.obs.recorder.attach_flight_recorder`: only
    stable observer interfaces are used — ``cell.prov`` handles (read
    by the RPC, careful-reference, sharing, and recovery hooks), the
    SIPS fabric's ``prov`` slot, ``injector.observers``,
    ``coordinator.observers``, and ``registry.register_observers`` so
    rebooted cells are traced too.  Attach after the flight recorder if
    taint events should land on the shared timeline.
    """
    recorder = getattr(system, "recorder", None)
    if recorder is not None and not recorder.enabled:
        recorder = None
    tracer = tracer if tracer is not None else \
        ProvenanceTracer(system.sim, recorder=recorder)
    system.provenance = tracer
    registry = system.registry
    tracer._registry = registry
    tracer._system = system
    system.machine.sips.prov = tracer

    def on_injection(record) -> None:
        try:
            cell = registry.cell_of_node(record.node_id)
        except KeyError:
            cell = None
        if cell is not None:
            tracer.fault_injected(cell, kind=record.kind,
                                  trigger=record.trigger)

    system.injector.observers.append(on_injection)

    coordinator = registry.coordinator
    if coordinator is not None:
        coordinator.observers.append(tracer.recovery_done)

    def wire_cell(cell) -> None:
        if cell.prov is tracer:
            return  # already traced (idempotent re-attach)
        cell.prov = tracer

    for cell in system.cells:
        wire_cell(cell)
    registry.register_observers.append(wire_cell)
    return tracer


# -- campaign merging ---------------------------------------------------

def merge_audits(reports: Iterable[Dict[str, Any]],
                 labels: Iterable[str]) -> Dict[str, Any]:
    """Fold per-trial audits into one campaign audit, deterministically.

    Trials are keyed by label (PR 6's ``scenario-seed`` convention) and
    kept verbatim, so a campaign-merged audit's per-trial entry is
    byte-identical to the single-process audit of the same trial; the
    folded summary just adds counts, making the merge associative and
    order-independent after the label sort.
    """
    pairs = sorted(zip(labels, reports), key=lambda p: p[0])
    trials: Dict[str, Dict[str, Any]] = {}
    by_verdict: Dict[str, int] = {}
    by_defense: Dict[str, int] = {}
    by_channel: Dict[str, int] = {}
    faults = 0
    verdicts: Dict[str, int] = {}
    for label, report in pairs:
        if label in trials:
            raise ValueError(f"duplicate audit label: {label}")
        trials[label] = report
        summary = report.get("summary", {})
        for bucket, total in (("by_verdict", by_verdict),
                              ("by_defense", by_defense),
                              ("by_channel", by_channel)):
            for key, n in summary.get(bucket, {}).items():
                total[key] = total.get(key, 0) + n
        faults += len(report.get("faults", []))
        v = report.get("verdict", "no_fault")
        verdicts[v] = verdicts.get(v, 0) + 1
    if verdicts.get("breach"):
        verdict = "breach"
    elif verdicts.get("contained"):
        verdict = "contained"
    else:
        verdict = "no_fault"
    return {
        "schema": AUDIT_SCHEMA,
        "trials": trials,
        "summary": {
            "trials": len(trials),
            "faults": faults,
            "by_verdict": by_verdict,
            "by_defense": by_defense,
            "by_channel": by_channel,
            "near_misses": by_verdict.get(V_BLOCKED, 0),
            "verdicts": verdicts,
        },
        "verdict": verdict,
    }


# -- rendering ----------------------------------------------------------

def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:.3f} ms"


def render_audit_markdown(payload: Dict[str, Any]) -> str:
    """Render a merged campaign audit (or a single-trial audit wrapped
    by :func:`merge_audits`) as markdown."""
    lines: List[str] = ["# Containment audit", ""]
    summary = payload.get("summary", {})
    lines.append(f"- verdict: **{payload.get('verdict', 'no_fault')}**")
    lines.append(f"- trials: {summary.get('trials', 0)}  "
                 f"faults: {summary.get('faults', 0)}")
    bv = summary.get("by_verdict", {})
    lines.append(f"- interactions: blocked {bv.get(V_BLOCKED, 0)}, "
                 f"discarded {bv.get(V_DISCARDED, 0)}, "
                 f"absorbed {bv.get(V_ABSORBED, 0)}")
    lines.append("")
    by_defense = summary.get("by_defense", {})
    if by_defense:
        lines.append("## Near-misses by defense")
        lines.append("")
        lines.append("| defense | blocked interactions |")
        lines.append("|---|---|")
        for defense in sorted(by_defense):
            lines.append(f"| {defense} | {by_defense[defense]} |")
        lines.append("")
    for label in sorted(payload.get("trials", {})):
        report = payload["trials"][label]
        lines.append(f"## Trial `{label}` — {report.get('verdict')}")
        lines.append("")
        for fault in report.get("faults", []):
            site = fault.get("site") or fault.get("trigger") or ""
            detail = f" {site}" if site else ""
            lines.append(f"- fault `{fault['taint']}`: {fault['kind']}"
                         f"{detail} on cell {fault['cell']} at "
                         f"{_fmt_ms(fault['time_ns'])}")
        recovered = report.get("recovered", {})
        for taint in sorted(recovered):
            lines.append(f"- recovery confirmed `{taint}` dead at "
                         f"{_fmt_ms(recovered[taint])}")
        dag = report.get("dag", {})
        edges = dag.get("edges", [])
        if edges:
            lines.append("")
            lines.append("| edge | channel | verdict | n | first |")
            lines.append("|---|---|---|---|---|")
            for edge in edges:
                lines.append(
                    f"| {edge['src']} → {edge['dst']} | {edge['channel']}"
                    f" | {edge['verdict']} | {edge['n']} | "
                    f"{_fmt_ms(edge['first_ns'])} |")
        absorbed = [it for it in report.get("interactions", [])
                    if it["verdict"] == V_ABSORBED]
        if absorbed:
            lines.append("")
            lines.append("### Containment breaches")
            lines.append("")
            for it in absorbed:
                lines.append(
                    f"- {it['channel']}/{it['kind']} cell {it['src']} → "
                    f"cell {it['dst']}"
                    + (f" frame {it['frame']}" if it["frame"] is not None
                       else "")
                    + f" ×{it['n']} at {_fmt_ms(it['first_ns'])}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
