"""Online invariant watchdog: sampled containment checks mid-run.

The end-of-run invariant sweep (``core/invariants.py``) can only say
*whether* a run ended consistent; it cannot say *when* an invariant
first broke or which fault broke it.  The watchdog samples the same
checks on a simulated-time cadence (modulated by event count: a tick on
an idle system skips the scan) and records every violation with its
simulation timestamp, the offending cell, and — when a provenance
tracer is attached — the active fault's taint id.  This is the oracle
the continuous-churn fuzzer (ROADMAP) gates on.

Overhead discipline: the watchdog is off by default and is only
attached when ``HIVE_WATCHDOG=1`` (same escape-hatch contract as
``HIVE_PROFILE``).  When off, nothing is scheduled and the simulation
is counter-identical to a run without this module.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

WATCHDOG_ENV = "HIVE_WATCHDOG"
WATCHDOG_PERIOD_ENV = "HIVE_WATCHDOG_PERIOD_NS"
DEFAULT_PERIOD_NS = 50_000_000  # 50 simulated ms
MAX_VIOLATIONS = 200


def watchdog_enabled(env=None) -> bool:
    env = os.environ if env is None else env
    return env.get(WATCHDOG_ENV, "0") == "1"


class InvariantWatchdog:
    """Periodically re-checks every live cell's containment invariants."""

    def __init__(self, system, period_ns: int = DEFAULT_PERIOD_NS,
                 full_sweep_every: int = 10):
        self.system = system
        self.sim = system.sim
        self.period_ns = int(period_ns)
        #: every Nth tick also runs the cross-cell ``check_system``
        #: sweep (membership agreement, dead references)
        self.full_sweep_every = full_sweep_every
        self.ticks = 0
        self.checks_run = 0
        self.cells_checked = 0
        self.violations: List[Dict[str, Any]] = []
        self.violations_dropped = 0
        self.first_violation: Optional[Dict[str, Any]] = None
        self._last_events = -1
        self._stopped = False

    def start(self) -> "InvariantWatchdog":
        self.sim.schedule(self.period_ns, self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True

    # -- sampling -------------------------------------------------------

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        events = self.sim.events_processed
        if events != self._last_events:
            # Event-count modulation: skip the scan when the system has
            # been idle since the last tick.
            self._last_events = events
            self._scan()
        self.sim.schedule(self.period_ns, self._tick)

    def _scan(self) -> None:
        # Imported lazily: repro.obs must stay importable from inside
        # repro.core module bodies (cell.py reads NULL_PROVENANCE).
        from repro.core.invariants import check_cell, check_system
        self.checks_run += 1
        for cell in self.system.cells:
            if not cell.alive:
                continue
            self.cells_checked += 1
            problems = check_cell(cell)
            if problems:
                self._record(cell.kernel_id, problems)
        if self.full_sweep_every and \
                self.checks_run % self.full_sweep_every == 0:
            problems = check_system(self.system)
            if problems:
                self._record(None, problems)

    def _record(self, cell_id: Optional[int],
                problems: List[str]) -> None:
        prov = getattr(self.system, "provenance", None)
        taint = prov.active_taint() if prov is not None and prov.enabled \
            else None
        entry = {
            "time_ns": self.sim.now,
            "cell": cell_id,
            "problems": list(problems),
            "taint": taint,
        }
        if self.first_violation is None:
            self.first_violation = entry
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(entry)
        else:
            self.violations_dropped += 1
        rec = getattr(self.system, "recorder", None)
        if rec is not None and rec.enabled:
            rec.event("watchdog.violation", "watchdog", cell=cell_id,
                      taint=taint, problems=len(problems),
                      first=problems[0])

    # -- reporting ------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        return {
            "period_ns": self.period_ns,
            "ticks": self.ticks,
            "checks_run": self.checks_run,
            "cells_checked": self.cells_checked,
            "violations": [dict(v) for v in self.violations],
            "violations_dropped": self.violations_dropped,
            "first_violation": dict(self.first_violation)
            if self.first_violation is not None else None,
        }


def attach_watchdog(system, period_ns: int = DEFAULT_PERIOD_NS,
                    full_sweep_every: int = 10) -> InvariantWatchdog:
    """Create, register, and start a watchdog on a booted system."""
    wd = InvariantWatchdog(system, period_ns=period_ns,
                           full_sweep_every=full_sweep_every)
    system.watchdog = wd
    return wd.start()


def maybe_attach_watchdog(system, env=None) -> Optional[InvariantWatchdog]:
    """Attach a watchdog iff ``HIVE_WATCHDOG=1``.

    With the variable unset (the default) this schedules nothing and
    returns None, so the run is counter-identical to one without the
    watchdog.
    """
    env = os.environ if env is None else env
    if not watchdog_enabled(env):
        return None
    period = int(env.get(WATCHDOG_PERIOD_ENV, DEFAULT_PERIOD_NS))
    return attach_watchdog(system, period_ns=period)
