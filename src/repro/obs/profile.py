"""Hot-path tier profiling: which fast path served the work, and where
the wall-clock went.

The PR3-5 optimizations layered escape-hatched fast paths over three
subsystems — coherence batches (``HIVE_BATCH``: memo replay / inlined
sequential / vectorized, with the scalar loop as reference), the engine
queue (``HIVE_WHEEL``: same-instant deque / timer wheel / binary heap,
plus the Timeout inline-expiry shortcut), and RPC dispatch
(``HIVE_RPC_FAST``: pooled fast path vs. the original slow path).  This
module aggregates the per-subsystem attribution counters into one
JSON-stable snapshot so campaigns and benchmarks can report *tier hit
rates* — how often each tier actually fired — instead of guessing from
end-to-end timings.

Counter sources:

* coherence tiers are plain always-on ints on the controller (one
  increment per batch — noise-level cost);
* RPC fast/slow counters live in each cell's RPC ``MetricSet``;
* engine dispatch tiers and per-subsystem wall attribution come from
  :class:`~repro.sim.engine.EngineProfile`, populated only when the
  simulator runs with ``HIVE_PROFILE=1`` / ``Simulator(profile=True)``
  (the profiled loop twins; disabled profiling costs nothing per event).

Everything except ``engine.subsystem_wall_s`` is a deterministic
function of the simulated event stream, so merged campaign snapshots
are byte-stable across same-seed runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.engine import EngineProfile


def _rate(part: int, whole: int) -> float:
    return part / whole if whole else 0.0


def coherence_tiers(coherence) -> Dict[str, Any]:
    """Batch-tier counts and hit rates for one coherence controller."""
    snap = coherence.tier_snapshot()
    total = (snap["memo_hits"] + snap["inline_batches"]
             + snap["vector_batches"] + snap["scalar_batches"])
    snap["batches_total"] = total
    snap["memo_hit_rate"] = _rate(snap["memo_hits"], total)
    snap["inline_rate"] = _rate(snap["inline_batches"], total)
    snap["vector_rate"] = _rate(snap["vector_batches"], total)
    snap["scalar_rate"] = _rate(snap["scalar_batches"], total)
    return snap


def rpc_tiers(system) -> Dict[str, Any]:
    """Fast- vs. slow-path RPC dispatch counts summed over all cells."""
    fast = slow = 0
    for cell in system.cells:
        counters = cell.rpc.metrics.counters
        if "fast_path" in counters:
            fast += counters["fast_path"].value
        if "slow_path" in counters:
            slow += counters["slow_path"].value
    total = fast + slow
    return {
        "fast_path": fast,
        "slow_path": slow,
        "calls_total": total,
        "fast_rate": _rate(fast, total),
    }


def engine_tiers(sim) -> Optional[Dict[str, Any]]:
    """Dispatch-tier counts from the simulator's profile, with rates.

    Returns None when the simulator runs unprofiled (the default): the
    unprofiled loops do not attribute dispatches, and reporting zeros
    would be indistinguishable from a run that genuinely dispatched
    nothing.
    """
    prof = getattr(sim, "profile", None)
    if prof is None:
        return None
    snap = prof.to_dict()
    total = (snap["nowq_dispatches"] + snap["heap_dispatches"]
             + snap["inline_dispatches"])
    snap["dispatches_total"] = total
    snap["nowq_rate"] = _rate(snap["nowq_dispatches"], total)
    snap["heap_rate"] = _rate(snap["heap_dispatches"], total)
    snap["inline_rate"] = _rate(snap["inline_dispatches"], total)
    snap["wheel_rate"] = _rate(snap["wheel_routed"], total)
    return snap


def replay_tiers(system) -> Optional[Dict[str, Any]]:
    """Trace-replay hit/fallback counters, with the hit rate.

    Non-None only when the run executed under a
    :class:`~repro.sim.replay.ReplaySession` (``system.replay_session``
    is hung by the bench harness); None means live execution, which —
    as with the unprofiled engine — is distinct from a replay run that
    happened to serve zero wakeups from the trace.
    """
    session = getattr(system, "replay_session", None)
    if session is None:
        return None
    snap = dict(session.snapshot())
    total = snap["replayed_from_trace"] + snap["fallback_wakeups"]
    snap["wakeups_total"] = total
    snap["trace_hit_rate"] = _rate(snap["replayed_from_trace"], total)
    return snap


def tier_snapshot(system) -> Dict[str, Any]:
    """One combined tier snapshot for a booted system."""
    return {
        "coherence": coherence_tiers(system.machine.coherence),
        "rpc": rpc_tiers(system),
        "engine": engine_tiers(system.sim),
        "replay": replay_tiers(system),
    }


def merge_tier_snapshots(snaps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard tier snapshots into one campaign-wide snapshot.

    Counts add; rates are recomputed from the merged counts (never
    averaged — shard sizes differ).  Engine sections merge via
    :class:`EngineProfile` so the subsystem wall map folds too; if every
    shard ran unprofiled the merged engine section is None.
    """
    merged: Dict[str, Any] = {
        "coherence": {"memo_hits": 0, "inline_batches": 0,
                      "vector_batches": 0, "scalar_batches": 0},
        "rpc": {"fast_path": 0, "slow_path": 0},
        "engine": None,
        "replay": None,
    }
    coh = merged["coherence"]
    rpc = merged["rpc"]
    engine_prof: Optional[EngineProfile] = None
    replay_acc: Optional[Dict[str, int]] = None
    for snap in snaps:
        if not snap:
            continue
        for key in ("memo_hits", "inline_batches", "vector_batches",
                    "scalar_batches"):
            coh[key] += snap["coherence"][key]
        rpc["fast_path"] += snap["rpc"]["fast_path"]
        rpc["slow_path"] += snap["rpc"]["slow_path"]
        eng = snap.get("engine")
        if eng is not None:
            shard_prof = EngineProfile.from_dict(eng)
            if engine_prof is None:
                engine_prof = shard_prof
            else:
                engine_prof.merge(shard_prof)
        rep = snap.get("replay")
        if rep is not None:
            if replay_acc is None:
                replay_acc = {"trace_rows": 0, "chains": 0,
                              "replayed_from_trace": 0,
                              "fallback_wakeups": 0, "desyncs": 0,
                              "resyncs": 0}
            for key in replay_acc:
                replay_acc[key] += rep.get(key, 0)

    total = sum(coh.values())
    coh["batches_total"] = total
    coh["memo_hit_rate"] = _rate(coh["memo_hits"], total)
    coh["inline_rate"] = _rate(coh["inline_batches"], total)
    coh["vector_rate"] = _rate(coh["vector_batches"], total)
    coh["scalar_rate"] = _rate(coh["scalar_batches"], total)

    calls = rpc["fast_path"] + rpc["slow_path"]
    rpc["calls_total"] = calls
    rpc["fast_rate"] = _rate(rpc["fast_path"], calls)

    if engine_prof is not None:
        eng = engine_prof.to_dict()
        etotal = (eng["nowq_dispatches"] + eng["heap_dispatches"]
                  + eng["inline_dispatches"])
        eng["dispatches_total"] = etotal
        eng["nowq_rate"] = _rate(eng["nowq_dispatches"], etotal)
        eng["heap_rate"] = _rate(eng["heap_dispatches"], etotal)
        eng["inline_rate"] = _rate(eng["inline_dispatches"], etotal)
        eng["wheel_rate"] = _rate(eng["wheel_routed"], etotal)
        merged["engine"] = eng

    if replay_acc is not None:
        rep = dict(replay_acc)
        rep["enabled"] = True
        rtotal = rep["replayed_from_trace"] + rep["fallback_wakeups"]
        rep["wakeups_total"] = rtotal
        rep["trace_hit_rate"] = _rate(rep["replayed_from_trace"], rtotal)
        merged["replay"] = rep
    return merged
