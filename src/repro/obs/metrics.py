"""System-wide metrics aggregation: one snapshot tree per system.

``snapshot_system`` walks a booted system and collects every per-cell,
per-subsystem :class:`~repro.sim.stats.MetricSet` plus the hardware-level
counters (coherence directory, SIPS fabric, per-node firewalls) into one
JSON-serializable tree, keyed ``cells.<id>.<subsystem>`` and
``machine.<subsystem>``.
"""

from __future__ import annotations

from typing import Any, Dict, List


def _firewall_hardware(machine, node_ids: List[int]) -> Dict[str, int]:
    checks = violations = updates = 0
    for node in node_ids:
        fw = machine.memory.firewalls[node]
        checks += fw.checks
        violations += fw.violations
        updates += fw.updates
    return {"hw_checks": checks, "hw_violations": violations,
            "hw_updates": updates}


def snapshot_system(system) -> Dict[str, Any]:
    """Aggregate every subsystem's metrics into one snapshot tree."""
    machine = system.machine
    tree: Dict[str, Any] = {
        "time_ns": system.sim.now,
        "cells": {},
        "machine": {},
    }
    for cell in system.cells:
        entry: Dict[str, Any] = {
            "alive": cell.alive,
            "incarnation": cell.incarnation,
            "kernel": cell.metrics.snapshot(),
            "rpc": cell.rpc.metrics.snapshot(),
            "sharing": cell.sharing_metrics.snapshot(),
            "recovery": cell.recovery_metrics.snapshot(),
            "detection": cell.detection_metrics.snapshot(),
            "careful": {
                "reads": cell.careful.reads,
                "faults_detected": cell.careful.faults_detected,
            },
        }
        firewall = cell.firewall_metrics.snapshot()
        firewall["grants_total"] = cell.firewall_mgr.grants
        firewall["revokes_total"] = cell.firewall_mgr.revokes
        firewall["remotely_writable_pages"] = \
            cell.firewall_mgr.remotely_writable_pages()
        firewall.update(_firewall_hardware(machine, cell.node_ids))
        entry["firewall"] = firewall
        detection = entry["detection"]
        detection["clock_checks"] = cell.detector.clock_checks
        detection["hints_recorded"] = len(cell.detector.hints)
        recovery = entry["recovery"]
        recovery["rounds_entered"] = len(cell.recovery_entries)
        tree["cells"][str(cell.kernel_id)] = entry

    stats = machine.coherence.stats
    coherence: Dict[str, Any] = {
        "read_hits": stats.read_hits,
        "read_misses": stats.read_misses,
        "write_hits": stats.write_hits,
        "write_misses": stats.write_misses,
        "remote_write_misses": stats.remote_write_misses,
        "avg_remote_write_miss_ns": stats.avg_remote_write_miss_ns,
        "invalidations": stats.invalidations,
        "firewall_checks": stats.firewall_checks,
    }
    hist = getattr(machine.coherence, "remote_write_hist", None)
    if hist is not None:
        for key, value in hist.snapshot().items():
            coherence[f"remote_write_miss_ns.{key}"] = value
    tree["machine"]["coherence"] = coherence

    sips = machine.sips
    tree["machine"]["sips"] = {
        "sends": sips.sends,
        "sends_by_kind": dict(getattr(sips, "sends_by_kind", {})),
        "flow_control_rejections": sips.flow_control_rejections,
    }
    tree["machine"]["firewall"] = _firewall_hardware(
        machine, list(range(machine.params.num_nodes)))

    coordinator = system.coordinator
    records = coordinator.records if coordinator is not None else []
    tree["recovery"] = {
        "rounds_completed": len(records),
        "reboots": system.registry.reboots,
        "rounds": [
            {
                "round_id": r.round_id,
                "dead_cells": sorted(r.dead_cells),
                "agreement_ns": r.agreement_ns,
                "last_entry_ns": r.last_entry_ns,
                "recovery_done_ns": r.recovery_done_ns,
                "discarded_pages": r.discarded_pages,
                "files_lost": r.files_lost,
                "killed_processes": r.killed_processes,
                "surviving_processes": r.surviving_processes,
                "rebooted": r.rebooted,
            }
            for r in records
        ],
    }
    return tree


def render_snapshot(tree: Dict[str, Any]) -> str:
    """Human-readable rendering of a snapshot tree (``repro metrics``)."""
    lines: List[str] = [f"metrics @ {tree['time_ns'] / 1e6:.3f} ms"]
    for cell_id in sorted(tree["cells"], key=int):
        entry = tree["cells"][cell_id]
        state = "alive" if entry["alive"] else "dead"
        lines.append(f"cell {cell_id} ({state}, "
                     f"incarnation {entry['incarnation']})")
        for subsystem in ("kernel", "rpc", "sharing", "firewall",
                          "recovery", "detection", "careful"):
            flat = entry[subsystem]
            nonzero = {k: v for k, v in sorted(flat.items()) if v}
            if not nonzero:
                continue
            parts = ", ".join(f"{k}={v:g}" if isinstance(v, float)
                              else f"{k}={v}" for k, v in nonzero.items())
            lines.append(f"  {subsystem:>9}: {parts}")
    for subsystem in ("coherence", "sips", "firewall"):
        flat = tree["machine"][subsystem]
        parts = ", ".join(
            f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(flat.items())
            if not isinstance(v, dict) and v)
        lines.append(f"machine {subsystem}: {parts or '(idle)'}")
    recovery = tree["recovery"]
    lines.append(f"recovery: {recovery['rounds_completed']} rounds, "
                 f"{recovery['reboots']} reboots")
    return "\n".join(lines)
