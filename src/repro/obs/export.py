"""Telemetry exporters: JSONL, Chrome ``trace_event``, fault timeline.

Three consumers, three formats:

* :func:`to_jsonl` — one JSON object per line, time-ordered, for ad-hoc
  ``jq``/pandas analysis and byte-for-byte determinism checks;
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON Object
  Format (complete-``X`` spans + instant-``i`` events, microsecond
  timestamps, ``pid`` = cell, ``tid`` = subsystem), loadable in
  ``about:tracing`` and Perfetto;
* :func:`render_fault_timeline` — a plain-text reconstruction of each
  recovery round: inject → hint → agreement → discard → recovery done,
  with per-phase latencies (the Table 7.4 debugging view).

``write_telemetry`` drops all of them (plus a metrics snapshot and an
optional ``BENCH_pr2.json`` summary) into one directory.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.metrics import snapshot_system
from repro.obs.recorder import FlightRecorder


def _json_line(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def open_artifact(path: str, mode: str = "r"):
    """Open a telemetry artifact, gzipping transparently by extension.

    A ``.gz`` suffix (``spans.jsonl.gz``, ``trace.json.gz``) routes
    through :mod:`gzip` in text mode; anything else is a plain file.
    Writers and readers share this helper, so every artifact the
    exporters emit can be read back with the same call regardless of
    compression.
    """
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a (possibly gzipped) JSONL artifact back into dicts."""
    with open_artifact(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def load_json(path: str) -> Any:
    """Read a (possibly gzipped) JSON artifact."""
    with open_artifact(path) as fh:
        return json.load(fh)


def to_jsonl(recorder: FlightRecorder) -> str:
    """All events and spans, one JSON object per line, time-ordered.

    Spans sort by start time; the (time, kind, id) sort key is total, so
    equal-seed runs serialize identically.
    """
    keyed = []
    for ev in recorder.events:
        keyed.append(((ev.time_ns, 0, 0), ev.to_dict()))
    for span in recorder.spans:
        keyed.append(((span.start_ns, 1, span.span_id), span.to_dict()))
    keyed.sort(key=lambda item: item[0])
    lines = [_json_line(payload) for _key, payload in keyed]
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(recorder: FlightRecorder,
                    system=None) -> Dict[str, Any]:
    """The Chrome ``trace_event`` JSON Object Format.

    ``pid`` is the cell id (-1 for system-wide activity), ``tid`` the
    subsystem category, timestamps/durations in microseconds.
    """
    events: List[Dict[str, Any]] = []
    pids = set()
    for span in recorder.spans:
        pid = span.cell if span.cell is not None else -1
        pids.add(pid)
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": (end_ns - span.start_ns) / 1000.0,
            "pid": pid,
            "tid": span.category,
            "args": args,
        })
    for ev in recorder.events:
        pid = ev.cell if ev.cell is not None else -1
        pids.add(pid)
        events.append({
            "name": ev.name,
            "cat": ev.category,
            "ph": "i",
            "s": "g",
            "ts": ev.time_ns / 1000.0,
            "pid": pid,
            "tid": ev.category,
            "args": dict(ev.attrs),
        })
    metadata = []
    for pid in sorted(pids):
        label = f"cell {pid}" if pid >= 0 else "system"
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# fault timeline
# ---------------------------------------------------------------------------

def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:10.3f} ms"


#: near-miss lines shown per recovery round before eliding the rest
_TIMELINE_NEAR_MISS_CAP = 6


def _near_miss_lines(events: List) -> List[str]:
    """Render blocked-taint events, eliding beyond the per-round cap."""
    lines = []
    for ev in events[:_TIMELINE_NEAR_MISS_CAP]:
        frame = ev.attrs.get("frame")
        where = f" frame {frame}" if frame is not None else ""
        lines.append(
            f"  near miss        @ {_fmt_ms(ev.time_ns)}  "
            f"{ev.attrs.get('channel')}:{ev.attrs.get('kind')} "
            f"cell {ev.attrs.get('src')} -> cell {ev.cell}{where} "
            f"blocked by {ev.attrs.get('defense')}")
    if len(events) > _TIMELINE_NEAR_MISS_CAP:
        lines.append(f"  (+{len(events) - _TIMELINE_NEAR_MISS_CAP} "
                     f"more near misses)")
    return lines


def render_fault_timeline(recorder: FlightRecorder) -> str:
    """Reconstruct each recovery round as a phase-by-phase timeline.

    Blocked-taint (near-miss) events from the provenance tracer are
    interleaved with the inject and recovery entries of the round they
    occurred in, so the view shows which defenses fired on the way to
    containment.
    """
    injections = [e for e in recorder.events
                  if e.name in ("fault.inject", "fault.corrupt")]
    hints = recorder.events_named("detect.hint")
    near_misses = sorted(recorder.events_named("taint.blocked"),
                         key=lambda e: e.time_ns)
    rounds = sorted(recorder.spans_named("recovery.round"),
                    key=lambda s: s.start_ns)
    lines: List[str] = []
    if not rounds:
        lines.append("fault timeline: no recovery rounds recorded")
        for inj in injections:
            lines.append(f"  inject        @ {_fmt_ms(inj.time_ns)}  "
                         f"{inj.attrs.get('kind', inj.name)} "
                         f"(cell {inj.cell}, "
                         f"trigger={inj.attrs.get('trigger', '-')})")
        lines.extend(_near_miss_lines(near_misses))
        return "\n".join(lines)
    lines.append(f"fault timeline — {len(rounds)} recovery "
                 f"round{'s' if len(rounds) != 1 else ''}")
    consumed: set = set()
    nm_idx = 0
    for round_num, round_span in enumerate(rounds):
        round_id = round_span.attrs.get("round")
        dead = round_span.attrs.get("dead", [])
        lines.append("")
        lines.append(f"round {round_id}: dead={dead}  "
                     f"outcome={round_span.attrs.get('outcome', '?')}  "
                     f"reason: {round_span.attrs.get('reason', '?')}")
        # Every injection that belongs to this round: not yet attributed
        # to an earlier round, at or before round start, and targeting
        # one of the round's dead cells when any were confirmed — so
        # correlated multi-cell failures handled by one recovery window
        # are all listed, not just the last inject.  An injection with
        # no resolvable cell matches any round.
        round_injects = []
        for idx, inj in enumerate(injections):
            if idx in consumed or inj.time_ns > round_span.start_ns:
                continue
            if dead and inj.cell is not None and inj.cell not in dead:
                continue
            round_injects.append((idx, inj))
        if dead:
            for idx, _inj in round_injects:
                consumed.add(idx)
        elif round_injects:
            # Voted-down/aborted rounds confirmed nobody dead, so there
            # is no cell set to match on; show the latest candidate but
            # leave it attributable to a later round.
            round_injects = round_injects[-1:]
        inject = round_injects[0][1] if round_injects else None
        prev_ns = None
        if inject is not None:
            prev_ns = inject.time_ns
        for _idx, inj in round_injects:
            lines.append(
                f"  inject           @ {_fmt_ms(inj.time_ns)}  "
                f"{inj.attrs.get('kind', inj.name)} on cell "
                f"{inj.cell} (trigger={inj.attrs.get('trigger', '-')})")
        # Near misses up to this round's end (everything left, for the
        # last round — blocks can land after recovery.done).
        round_end = round_span.end_ns
        last_round = round_num == len(rounds) - 1
        nm_here = []
        while nm_idx < len(near_misses):
            ev = near_misses[nm_idx]
            if (not last_round and round_end is not None
                    and ev.time_ns > round_end):
                break
            nm_here.append(ev)
            nm_idx += 1
        lines.extend(_near_miss_lines(nm_here))
        first_hint = None
        for h in hints:
            if h.time_ns <= round_span.start_ns + 1:
                first_hint = first_hint or h
        if first_hint is not None:
            delta = ("" if prev_ns is None else
                     f"  (+{(first_hint.time_ns - prev_ns) / 1e6:.3f} ms)")
            lines.append(
                f"  first hint       @ {_fmt_ms(first_hint.time_ns)}"
                f"{delta}  cell {first_hint.cell} suspects "
                f"{first_hint.attrs.get('suspect')}: "
                f"{first_hint.attrs.get('reason')}")
            prev_ns = first_hint.time_ns
        agreement = [s for s in recorder.spans_named("recovery.agreement")
                     if s.attrs.get("round") == round_id]
        if agreement:
            ag = agreement[0]
            delta = ("" if prev_ns is None else
                     f"  (+{(ag.start_ns - prev_ns) / 1e6:.3f} ms suspend)")
            lines.append(f"  agreement start  @ {_fmt_ms(ag.start_ns)}"
                         f"{delta}")
            if ag.end_ns is not None:
                lines.append(
                    f"  agreement done   @ {_fmt_ms(ag.end_ns)}  "
                    f"(+{(ag.end_ns - ag.start_ns) / 1e6:.3f} ms, "
                    f"{ag.attrs.get('rounds', '?')} round(s))")
                prev_ns = ag.end_ns
        cell_spans = [s for s in recorder.spans_named("recovery.cell")
                      if s.attrs.get("round") == round_id]
        if cell_spans:
            last_entry = max(s.start_ns for s in cell_spans)
            lines.append(
                f"  last cell enters @ {_fmt_ms(last_entry)}  "
                f"({len(cell_spans)} surviving cells)")
            if inject is not None:
                lines.append(
                    f"  detection latency (inject → last entry): "
                    f"{(last_entry - inject.time_ns) / 1e6:.3f} ms")
            prev_ns = last_entry
        cleanup = [s for s in recorder.spans_named("recovery.cleanup")
                   if s.attrs.get("round") == round_id
                   and s.end_ns is not None]
        if cleanup:
            discard_done = max(s.end_ns for s in cleanup)
            discarded = sum(s.attrs.get("discarded", 0) for s in cleanup)
            killed = sum(s.attrs.get("killed", 0) for s in cleanup)
            delta = ("" if prev_ns is None else
                     f"  (+{(discard_done - prev_ns) / 1e6:.3f} ms)")
            lines.append(
                f"  discard done     @ {_fmt_ms(discard_done)}{delta}  "
                f"{discarded} pages discarded, {killed} processes killed")
            prev_ns = discard_done
        done_events = [e for e in recorder.events_named("recovery.done")
                       if e.attrs.get("round") == round_id]
        done_ns = (done_events[0].time_ns if done_events
                   else round_span.end_ns)
        if done_ns is not None:
            delta = ("" if prev_ns is None else
                     f"  (+{(done_ns - prev_ns) / 1e6:.3f} ms)")
            lines.append(f"  recovery done    @ {_fmt_ms(done_ns)}{delta}")
            if inject is not None:
                lines.append(
                    f"  total (inject → recovery done): "
                    f"{(done_ns - inject.time_ns) / 1e6:.3f} ms")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# containment-audit chrome trace
# ---------------------------------------------------------------------------

def audit_to_chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Render a containment audit as Chrome ``trace_event`` JSON.

    Accepts either a merged audit (``{"trials": {label: report}}``, the
    shape ``repro audit`` produces) or a single per-trial report from
    :meth:`ProvenanceTracer.audit_report`.  Each trial becomes one
    ``pid`` row; fault injections render as instant events and every
    propagation-DAG edge as a complete span covering its
    ``first_ns``..``last_ns`` window, with the verdict, defense, and
    interaction count in ``args``.
    """
    trials = payload.get("trials")
    if trials is None:
        trials = {"trial": payload}
    events: List[Dict[str, Any]] = []
    metadata: List[Dict[str, Any]] = []
    for pid, label in enumerate(sorted(trials)):
        report = trials[label]
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"{label} [{report.get('verdict', '?')}]"},
        })
        for fault in report.get("faults", []):
            events.append({
                "name": f"fault {fault['taint']} -> cell {fault['cell']}",
                "cat": "taint",
                "ph": "i",
                "s": "p",
                "ts": fault["time_ns"] / 1000.0,
                "pid": pid,
                "tid": "fault",
                "args": {k: v for k, v in fault.items()
                         if k != "time_ns"},
            })
        for edge in report.get("dag", {}).get("edges", []):
            first = edge.get("first_ns", 0)
            last = edge.get("last_ns", first)
            events.append({
                "name": f"{edge['src']} -> {edge['dst']} "
                        f"[{edge['verdict']}]",
                "cat": edge.get("channel", "taint"),
                "ph": "X",
                "ts": first / 1000.0,
                "dur": max(last - first, 0) / 1000.0,
                "pid": pid,
                "tid": edge.get("channel", "taint"),
                "args": dict(edge),
            })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# directory writer
# ---------------------------------------------------------------------------

def write_bench_summary(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")


def write_telemetry(out_dir: str, recorder: FlightRecorder, system,
                    bench: Optional[Dict[str, Any]] = None,
                    compress: bool = False) -> Dict[str, str]:
    """Write every telemetry artifact into ``out_dir``; returns paths.

    ``compress`` gzips the two line/stream artifacts (``spans.jsonl.gz``
    and ``trace.json.gz``) — the ones that grow with simulated time —
    while the small snapshots stay plain.  Readers go through
    :func:`open_artifact`, so both forms load identically.
    """
    os.makedirs(out_dir, exist_ok=True)
    gz = ".gz" if compress else ""
    paths = {
        "spans": os.path.join(out_dir, "spans.jsonl" + gz),
        "trace": os.path.join(out_dir, "trace.json" + gz),
        "metrics": os.path.join(out_dir, "metrics.json"),
        "timeline": os.path.join(out_dir, "timeline.txt"),
    }
    with open_artifact(paths["spans"], "w") as fh:
        fh.write(to_jsonl(recorder))
    with open_artifact(paths["trace"], "w") as fh:
        json.dump(to_chrome_trace(recorder, system), fh, sort_keys=True)
        fh.write("\n")
    with open(paths["metrics"], "w") as fh:
        json.dump(snapshot_system(system), fh, sort_keys=True, indent=2)
        fh.write("\n")
    with open(paths["timeline"], "w") as fh:
        fh.write(render_fault_timeline(recorder) + "\n")
    if bench is not None:
        paths["bench"] = os.path.join(out_dir, "BENCH_pr2.json")
        write_bench_summary(paths["bench"], bench)
    return paths
