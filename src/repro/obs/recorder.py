"""The flight recorder: deterministic span tracing for a whole system.

The paper credits SimOS's deterministic replay with making the fault-
containment work debuggable ("makes it straightforward to analyze the
complex series of events that follow after a software fault", Section 6).
This module is the reproduction's equivalent: subsystems open *spans*
(named intervals of simulated time with attributes and parent links) and
emit point *events* into one bounded, system-wide recorder.

Determinism: span ids come from a private counter, timestamps from the
simulator clock, and nothing consults wall time or global randomness —
two runs with the same seed produce byte-identical telemetry.

Overhead discipline: every instrumented hot path reads its ``obs``
handle and checks ``obs.enabled`` before building a span, so the default
:data:`NULL_RECORDER` costs one attribute load and one branch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: span/event categories (also the Chrome-trace thread names)
OBS_RPC = "rpc"
OBS_RECOVERY = "recover"
OBS_AGREEMENT = "agree"
OBS_CAREFUL = "careful"
OBS_FIREWALL = "firewall"
OBS_DETECT = "detect"
OBS_FAULT = "fault"
OBS_PROC = "proc"


class Span:
    """One named interval of simulated time."""

    __slots__ = ("span_id", "parent_id", "name", "category", "cell",
                 "start_ns", "end_ns", "attrs")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 category: str, cell: Optional[int], start_ns: int,
                 attrs: Dict[str, Any]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.cell = cell
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "cell": self.cell,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Span {self.span_id} {self.name} "
                f"[{self.start_ns},{self.end_ns}]>")


class TelemetryEvent:
    """One point-in-time occurrence (fault injected, hint raised, ...)."""

    __slots__ = ("time_ns", "name", "category", "cell", "attrs")

    def __init__(self, time_ns: int, name: str, category: str,
                 cell: Optional[int], attrs: Dict[str, Any]):
        self.time_ns = time_ns
        self.name = name
        self.category = category
        self.cell = cell
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "time_ns": self.time_ns,
            "name": self.name,
            "category": self.category,
            "cell": self.cell,
            "attrs": self.attrs,
        }


class NullSpan:
    """The inert span handed out by :class:`NullRecorder`."""

    __slots__ = ()
    span_id = 0
    parent_id = 0
    end_ns = None


NULL_SPAN = NullSpan()


class NullRecorder:
    """Recording disabled: every operation is a no-op.

    Hot paths guard on ``obs.enabled`` and skip even the begin/end calls,
    so the null default costs one attribute load per instrumented site.
    """

    enabled = False

    def begin(self, name: str, category: str, cell: Optional[int] = None,
              parent: int = 0, **attrs) -> NullSpan:
        return NULL_SPAN

    def end(self, span, **attrs) -> None:
        pass

    def event(self, name: str, category: str, cell: Optional[int] = None,
              **attrs) -> None:
        pass


NULL_RECORDER = NullRecorder()


class FlightRecorder:
    """Bounded, deterministic store of spans and events for one system."""

    enabled = True

    def __init__(self, sim, span_capacity: int = 200_000,
                 event_capacity: int = 200_000):
        self.sim = sim
        self.span_capacity = span_capacity
        self.event_capacity = event_capacity
        self.spans: Deque[Span] = deque(maxlen=span_capacity)
        self.events: Deque[TelemetryEvent] = deque(maxlen=event_capacity)
        self.spans_dropped = 0
        self.events_dropped = 0
        self._next_span = 1

    # -- recording ------------------------------------------------------

    def begin(self, name: str, category: str, cell: Optional[int] = None,
              parent: int = 0, **attrs) -> Span:
        """Open a span; ``parent`` is a span id (or a Span, or 0)."""
        parent_id = parent.span_id if isinstance(parent, Span) else \
            int(parent or 0)
        span = Span(self._next_span, parent_id, name, category, cell,
                    self.sim.now, attrs)
        self._next_span += 1
        if len(self.spans) >= self.span_capacity:
            self.spans_dropped += 1  # deque evicts the oldest span
        self.spans.append(span)
        return span

    def end(self, span, **attrs) -> None:
        if span is None or span is NULL_SPAN:
            return
        if span.end_ns is None:
            span.end_ns = self.sim.now
        if attrs:
            span.attrs.update(attrs)

    def event(self, name: str, category: str, cell: Optional[int] = None,
              **attrs) -> None:
        if len(self.events) >= self.event_capacity:
            self.events_dropped += 1
        self.events.append(
            TelemetryEvent(self.sim.now, name, category, cell, attrs))

    # -- querying -------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.name == name]

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def counts_by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        for ev in self.events:
            out[ev.category] = out.get(ev.category, 0) + 1
        return out


def attach_flight_recorder(system, recorder: Optional[FlightRecorder] = None,
                           ) -> FlightRecorder:
    """Wire a recorder into a booted :class:`~repro.core.hive.HiveSystem`.

    Uses only stable observer interfaces: ``cell.obs`` handles (read by
    the RPC, recovery, careful-reference, and firewall instrumentation),
    ``detector.observers``, ``panic_hooks``, ``injector.observers``,
    ``coordinator.observers``, and ``registry.register_observers`` so
    cells rebooted during reintegration are instrumented too.
    """
    rec = recorder if recorder is not None else FlightRecorder(system.sim)
    system.recorder = rec
    registry = system.registry
    coordinator = registry.coordinator
    if coordinator is not None:
        coordinator.obs = rec
        coordinator.agreement.obs = rec

    def on_injection(record) -> None:
        try:
            cell = registry.cell_of_node(record.node_id)
        except KeyError:
            cell = None
        rec.event("fault.inject", OBS_FAULT, cell=cell,
                  kind=record.kind, node=record.node_id,
                  trigger=record.trigger)

    system.injector.observers.append(on_injection)

    def on_recovery(record) -> None:
        rec.event("recovery.done", OBS_RECOVERY,
                  round=record.round_id,
                  dead=sorted(record.dead_cells),
                  discarded_pages=record.discarded_pages,
                  files_lost=record.files_lost,
                  killed_processes=record.killed_processes,
                  surviving_processes=record.surviving_processes)

    if coordinator is not None:
        coordinator.observers.append(on_recovery)

    def wire_cell(cell) -> None:
        if cell.obs is rec:
            return  # already instrumented (idempotent re-attach)
        cell.obs = rec

        def on_hint(hint) -> None:
            rec.event("detect.hint", OBS_DETECT, cell=hint.reporter,
                      suspect=hint.suspect, reason=hint.reason)

        cell.detector.observers.append(on_hint)

        def on_panic(reason: str, _cell_id: int = cell.kernel_id) -> None:
            rec.event("panic", OBS_PROC, cell=_cell_id, reason=reason)

        cell.panic_hooks.append(on_panic)

    for cell in system.cells:
        wire_cell(cell)
    registry.register_observers.append(wire_cell)
    return rec
