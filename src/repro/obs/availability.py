"""Availability accounting: per-cell up/suspended/dead timelines derived
from flight-recorder fault and recovery telemetry.

The paper's availability argument (Section 2) is that a fault costs the
machine only the failed cell plus a recovery pause on the survivors.
This module turns one run's recorded spans and events into exactly that
ledger: for every cell, how long it was **up**, **suspended** (a live
cell parked at a recovery barrier), or **dead** (failed, until reboot),
plus per-round work-lost figures (pages discarded, files lost,
processes killed vs. survived) and recovery-round latency percentiles.

The derivation core (:func:`availability_from_dicts`) consumes plain
span/event dicts — the shape ``Span.to_dict``/``TelemetryEvent.to_dict``
produce and ``spans.jsonl`` stores — so the same code serves a live
:class:`~repro.obs.recorder.FlightRecorder` (via
:func:`availability_report`) and cross-shard campaign merging, where
only serialized telemetry crosses the process boundary.

Everything reported is a pure function of simulated time and
deterministic counters, so same-seed runs produce byte-identical
reports (the campaign acceptance bar).

Timeline rules:

* a cell confirmed dead by a recovery round is **dead** from its
  ``fault.inject`` (falling back to its ``panic`` event, then to the
  round start) until the round's ``recovery.master`` span ends with
  ``rebooted=True`` — or to the horizon if never rebooted;
* survivors of a recovered round are **suspended** from round start to
  the round's ``recovery.done`` event (user level resumes there; the
  round span itself extends through diagnostics and reboot);
* a voted-down or aborted round suspends every live cell for the full
  round span (nobody died, everybody paused);
* a cell that panics but is never confirmed dead by any round counts
  dead from the panic to the horizon (nobody recovered it);
* everything else is up.

Correlated faults that kill several cells inside one recovery window
are handled by the same rules: each dead cell matches its own inject,
and all of them share the round's reboot edge.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.sim.stats import Histogram

#: recovery-latency bucket ladder (ns): recovery rounds sit in the
#: hundreds-of-microseconds to hundreds-of-milliseconds regime
#: (Table 7.4's ~0.3 ms hardware detection up to ~400 ms software tail).
RECOVERY_LATENCY_BOUNDS_NS = [
    100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000,
    100_000_000, 200_000_000, 500_000_000, 1_000_000_000, 2_000_000_000,
]


def _span_like(rec: Dict[str, Any]) -> bool:
    return rec.get("type") == "span" or "start_ns" in rec


def _overlap_clamped(start: int, end: Optional[int], horizon: int) -> int:
    lo = max(0, start)
    hi = horizon if end is None else min(end, horizon)
    return max(0, hi - lo)


def availability_from_dicts(records: Iterable[Dict[str, Any]],
                            cell_ids: Optional[List[int]] = None,
                            horizon_ns: Optional[int] = None,
                            ) -> Dict[str, Any]:
    """Derive the availability ledger from span/event dicts.

    ``records`` may mix spans and events in any order (e.g. parsed
    ``spans.jsonl`` lines).  ``cell_ids`` fixes the cell population;
    when omitted it is inferred from the telemetry, which misses cells
    that never appear in any span or event.  ``horizon_ns`` is the
    accounting window end; it defaults to the latest timestamp seen.
    """
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for rec in records:
        (spans if _span_like(rec) else events).append(rec)
    spans.sort(key=lambda s: (s["start_ns"], s.get("span_id", 0)))
    events.sort(key=lambda e: e["time_ns"])

    rounds = [s for s in spans if s["name"] == "recovery.round"]
    masters = [s for s in spans if s["name"] == "recovery.master"]
    injects = [e for e in events if e["name"] == "fault.inject"]
    panics = [e for e in events if e["name"] == "panic"]
    dones = {e["attrs"]["round"]: e for e in events
             if e["name"] == "recovery.done" and "round" in e["attrs"]}

    observed: set = set()
    for rec in spans + events:
        if rec.get("cell") is not None and rec["cell"] >= 0:
            observed.add(rec["cell"])
    for span in rounds:
        observed.update(span["attrs"].get("dead", []))
    cells = sorted(cell_ids) if cell_ids is not None else sorted(observed)

    if horizon_ns is None:
        horizon_ns = 0
        for span in spans:
            horizon_ns = max(horizon_ns, span["start_ns"],
                             span.get("end_ns") or 0)
        for ev in events:
            horizon_ns = max(horizon_ns, ev["time_ns"])
    horizon = int(horizon_ns)

    suspended = {c: 0 for c in cells}
    dead_ns = {c: 0 for c in cells}
    faults_by_cell = {c: 0 for c in cells}
    for inj in injects:
        if inj.get("cell") in faults_by_cell:
            faults_by_cell[inj["cell"]] += 1

    ever_dead: set = set()
    consumed_injects: set = set()
    latency_hist = Histogram("recovery_round_ns",
                             RECOVERY_LATENCY_BOUNDS_NS)
    detect_hist = Histogram("detection_ns", RECOVERY_LATENCY_BOUNDS_NS)
    round_rows: List[Dict[str, Any]] = []
    totals = {"discarded_pages": 0, "files_lost": 0,
              "killed_processes": 0, "surviving_processes": 0}

    for span in rounds:
        round_id = span["attrs"].get("round")
        outcome = span["attrs"].get("outcome")
        dead = sorted(span["attrs"].get("dead", []))
        start = span["start_ns"]
        end = span.get("end_ns")
        if outcome != "recovered" or not dead:
            # Nobody died; every live cell paused for the whole span.
            for c in cells:
                suspended[c] += _overlap_clamped(start, end, horizon)
            round_rows.append({
                "round": round_id, "outcome": outcome, "dead": dead,
                "start_ns": start, "done_ns": end,
                "detect_ns": None, "recovery_ns": None,
                "work_lost": None,
            })
            continue

        done_ev = dones.get(round_id)
        done_ns = done_ev["time_ns"] if done_ev is not None else end
        master = next((m for m in masters
                       if m["attrs"].get("round") == round_id), None)
        reboot_ns = (master.get("end_ns") if master is not None
                     and master["attrs"].get("rebooted") else None)

        # Each dead cell goes down at its own inject (correlated faults
        # each match their own), else its panic, else the round start.
        detect_ns: Optional[int] = None
        for c in dead:
            down_at = None
            for idx, inj in enumerate(injects):
                if (idx not in consumed_injects and inj.get("cell") == c
                        and inj["time_ns"] <= (done_ns or horizon)):
                    down_at = inj["time_ns"]
                    consumed_injects.add(idx)
                    break
            if down_at is None:
                for p in panics:
                    if p.get("cell") == c and p["time_ns"] <= start:
                        down_at = p["time_ns"]
                        break
            if down_at is None:
                down_at = start
            else:
                lat = start - down_at
                if lat >= 0:
                    detect_hist.record(lat)
                    detect_ns = (lat if detect_ns is None
                                 else max(detect_ns, lat))
            if c in dead_ns:
                dead_ns[c] += _overlap_clamped(down_at, reboot_ns, horizon)
            ever_dead.add(c)

        for c in cells:
            if c not in dead:
                suspended[c] += _overlap_clamped(start, done_ns, horizon)

        recovery_ns = (done_ns - start) if done_ns is not None else None
        if recovery_ns is not None and recovery_ns >= 0:
            latency_hist.record(recovery_ns)
        work = None
        if done_ev is not None:
            attrs = done_ev["attrs"]
            work = {key: attrs.get(key, 0) for key in totals}
            for key in totals:
                totals[key] += work[key]
        round_rows.append({
            "round": round_id, "outcome": outcome, "dead": dead,
            "start_ns": start, "done_ns": done_ns,
            "detect_ns": detect_ns, "recovery_ns": recovery_ns,
            "work_lost": work,
        })

    # A panicked cell no round ever recovered stays down to the horizon.
    for p in panics:
        c = p.get("cell")
        if c in dead_ns and c not in ever_dead:
            dead_ns[c] += _overlap_clamped(p["time_ns"], None, horizon)
            ever_dead.add(c)

    cell_rows: Dict[str, Any] = {}
    for c in cells:
        down = min(dead_ns[c], horizon)
        susp = min(suspended[c], max(0, horizon - down))
        up = max(0, horizon - down - susp)
        cell_rows[str(c)] = {
            "up_ns": up,
            "suspended_ns": susp,
            "dead_ns": down,
            "availability": up / horizon if horizon else 1.0,
            "faults": faults_by_cell[c],
        }

    n_recovered = sum(1 for r in round_rows
                      if r["outcome"] == "recovered" and r["dead"])
    work_lost: Dict[str, Any] = dict(totals)
    work_lost["per_fault_discarded_pages"] = (
        totals["discarded_pages"] / n_recovered if n_recovered else 0.0)
    work_lost["per_fault_killed_processes"] = (
        totals["killed_processes"] / n_recovered if n_recovered else 0.0)

    return {
        "horizon_ns": horizon,
        "cells": cell_rows,
        "rounds": round_rows,
        "recovery_latency_ns": latency_hist.snapshot(),
        "detection_latency_ns": detect_hist.snapshot(),
        # Full histogram state rides along so campaign shards stay
        # mergeable (snapshot percentiles alone are not additive).
        "recovery_latency_hist": latency_hist.to_dict(),
        "detection_latency_hist": detect_hist.to_dict(),
        "work_lost": work_lost,
        "faults_injected": len(injects),
        "rounds_recovered": n_recovered,
    }


def merge_availability(reports: List[Dict[str, Any]],
                       labels: Optional[List[str]] = None,
                       ) -> Dict[str, Any]:
    """Fold per-shard availability ledgers into one campaign ledger.

    Each shard is an independent simulated machine, so per-cell time
    buckets and work-lost counters add, horizons add, and the latency
    histograms merge bucket-wise — giving campaign-wide percentiles
    with exactly the semantics of one histogram fed every shard's
    rounds.  ``labels`` (parallel to ``reports``) tag each shard's
    round rows with a ``"trial"`` key so round ids stay unambiguous
    after concatenation.  The merged ledger has the same shape as a
    single-shard one (histogram state included), so merging is
    associative: merging merged ledgers is fine.
    """
    if labels is not None and len(labels) != len(reports):
        raise ValueError("labels must parallel reports")
    horizon = 0
    cells: Dict[str, Dict[str, Any]] = {}
    rounds: List[Dict[str, Any]] = []
    latency_hist: Optional[Histogram] = None
    detect_hist: Optional[Histogram] = None
    totals = {"discarded_pages": 0, "files_lost": 0,
              "killed_processes": 0, "surviving_processes": 0}
    faults = recovered = 0
    for i, rep in enumerate(reports):
        horizon += rep["horizon_ns"]
        for cid, row in rep["cells"].items():
            agg = cells.setdefault(cid, {"up_ns": 0, "suspended_ns": 0,
                                         "dead_ns": 0, "faults": 0})
            for key in ("up_ns", "suspended_ns", "dead_ns", "faults"):
                agg[key] += row[key]
        for row in rep["rounds"]:
            tagged = dict(row)
            if labels is not None:
                tagged["trial"] = labels[i]
            rounds.append(tagged)
        shard_lat = Histogram.from_dict(rep["recovery_latency_hist"])
        shard_det = Histogram.from_dict(rep["detection_latency_hist"])
        if latency_hist is None:
            latency_hist, detect_hist = shard_lat, shard_det
        else:
            latency_hist.merge(shard_lat)
            detect_hist.merge(shard_det)
        for key in totals:
            totals[key] += rep["work_lost"][key]
        faults += rep["faults_injected"]
        recovered += rep["rounds_recovered"]
    if latency_hist is None:
        latency_hist = Histogram("recovery_round_ns",
                                 RECOVERY_LATENCY_BOUNDS_NS)
        detect_hist = Histogram("detection_ns", RECOVERY_LATENCY_BOUNDS_NS)
    for row in cells.values():
        row["availability"] = row["up_ns"] / horizon if horizon else 1.0
    work_lost: Dict[str, Any] = dict(totals)
    work_lost["per_fault_discarded_pages"] = (
        totals["discarded_pages"] / recovered if recovered else 0.0)
    work_lost["per_fault_killed_processes"] = (
        totals["killed_processes"] / recovered if recovered else 0.0)
    return {
        "horizon_ns": horizon,
        "cells": {cid: cells[cid] for cid in sorted(cells, key=int)},
        "rounds": rounds,
        "recovery_latency_ns": latency_hist.snapshot(),
        "detection_latency_ns": detect_hist.snapshot(),
        "recovery_latency_hist": latency_hist.to_dict(),
        "detection_latency_hist": detect_hist.to_dict(),
        "work_lost": work_lost,
        "faults_injected": faults,
        "rounds_recovered": recovered,
    }


def availability_report(recorder, system=None,
                        horizon_ns: Optional[int] = None,
                        ) -> Dict[str, Any]:
    """Availability ledger for a live recorder (and optionally the booted
    system, which pins the cell population and the horizon)."""
    records = [s.to_dict() for s in recorder.spans]
    records += [e.to_dict() for e in recorder.events]
    cell_ids = None
    if system is not None:
        cell_ids = [cell.kernel_id for cell in system.cells]
        if horizon_ns is None:
            horizon_ns = system.sim.now
    return availability_from_dicts(records, cell_ids=cell_ids,
                                   horizon_ns=horizon_ns)
