"""Section 4.1: careful reference protocol latency.

Paper: the clock-monitoring read averages 1.16 us from careful_on to
careful_off, of which 0.7 us is the cache miss to the remote clock line —
"substantially faster than sending an RPC to get the data, which takes a
minimum of 7.2 us and requires interrupting a processor".
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.workloads.micro import (
    boot_two_cell,
    measure_careful_reference,
    measure_rpc,
)

PAPER_CAREFUL_NS = 1_160
PAPER_MISS_NS = 700
PAPER_RPC_NS = 7_200


def test_careful_reference_latency(once):
    def run():
        system = boot_two_cell()
        careful = measure_careful_reference(system)
        rpc = measure_rpc(system)
        return careful, rpc

    careful, rpc = once(run)

    table = ComparisonTable("Section 4.1 — careful reference vs RPC")
    table.add("careful_on..careful_off", PAPER_CAREFUL_NS,
              careful["mean_ns"], "ns")
    table.add("  of which cache miss", PAPER_MISS_NS, 700, "ns")
    table.add("equivalent RPC", PAPER_RPC_NS, rpc["mean_ns"], "ns")
    table.add("RPC / careful ratio",
              round(PAPER_RPC_NS / PAPER_CAREFUL_NS, 1),
              round(rpc["mean_ns"] / careful["mean_ns"], 1), "x")
    table.print()

    assert abs(careful["mean_ns"] - PAPER_CAREFUL_NS) < 100
    # The design claim: careful reference is several times cheaper than
    # fetching the same word via RPC.
    assert rpc["mean_ns"] / careful["mean_ns"] > 5.0
