"""Section 4.2: performance cost of the firewall check.

Paper: "The firewall check increases the average remote write cache miss
latency under pmake by 6.3% and under ocean by 4.4%.  This increase has
little overall effect since write cache misses are a small fraction of
the workload run time."
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.workloads import OceanWorkload, Platform, PmakeWorkload
from repro.workloads.micro import measure_firewall_overhead

PAPER_PMAKE_PCT = 6.3
PAPER_OCEAN_PCT = 4.4


def _run_workload(workload, firewall_enabled):
    sim = Simulator()
    hive = boot_hive(
        sim, num_cells=4,
        machine_config=MachineConfig(firewall_enabled=firewall_enabled))
    hive.namespace.mount("/tmp", 1)
    hive.namespace.mount("/usr", 2)
    hive.namespace.mount("/results", 0)
    result = workload.run(Platform(hive))
    stats = hive.machine.coherence.stats
    return result.elapsed_s, stats.avg_remote_write_miss_ns


def test_firewall_check_latency(once):
    """The raw hardware cost: remote-write miss latency with/without."""
    measured = once(measure_firewall_overhead)

    table = ComparisonTable(
        "Section 4.2 — firewall check on remote write misses")
    table.add("remote write miss, check on", 744,  # 700 * 1.063
              measured["avg_remote_write_miss_ns_fw"], "ns")
    table.add("remote write miss, check off", 700,
              measured["avg_remote_write_miss_ns_nofw"], "ns")
    table.add("overhead (paper: 4.4-6.3)", 5.4,
              round(measured["overhead_pct"], 1), "%")
    table.print()

    assert 3.0 < measured["overhead_pct"] < 8.0


@pytest.mark.parametrize("name,workload_cls,paper_pct",
                         [("pmake", PmakeWorkload, PAPER_PMAKE_PCT),
                          ("ocean", OceanWorkload, PAPER_OCEAN_PCT)])
def test_firewall_negligible_on_workloads(name, workload_cls, paper_pct,
                                          once):
    """Whole-workload effect of disabling the check: must be tiny."""

    def run():
        with_fw, miss_fw = _run_workload(workload_cls(), True)
        without_fw, miss_nofw = _run_workload(workload_cls(), False)
        return with_fw, without_fw, miss_fw, miss_nofw

    with_fw, without_fw, miss_fw, miss_nofw = once(run)

    overall_pct = (with_fw / without_fw - 1) * 100
    miss_pct = ((miss_fw / miss_nofw - 1) * 100) if miss_nofw else 0.0
    table = ComparisonTable(
        f"Section 4.2 — firewall effect on {name}")
    table.add("remote-write miss increase", paper_pct,
              round(miss_pct, 1), "%")
    table.add("overall run-time increase", 0.0,
              round(overall_pct, 2), "%")
    table.print()

    if miss_nofw:
        assert 2.0 < miss_pct < 9.0
    # "little overall effect"
    assert overall_pct < 1.0
