"""Section 5.2: the remote-fault contribution to pmake's slowdown.

Paper: "During about six seconds of execution on four processors, there
are 8935 page faults that hit in the page cache, of which 4946 are remote
on the four-cell system.  This increases the time spent in these faults
from 117 to 455 milliseconds (cumulative across the processors), which is
about 13% of the overall slowdown of pmake from a one-cell to a four-cell
system.  This time is worth optimizing but is not a dominant effect."
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.workloads import Platform, PmakeWorkload

PAPER = {
    "cache_hit_faults": 8_935,
    "remote_faults": 4_946,
    "fault_ms_1cell": 117,
    "fault_ms_4cell": 455,
    "share_of_slowdown_pct": 13,
}

LOCAL_FAULT_NS = 6_900
REMOTE_FAULT_NS = 50_700


def _run(ncells):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=ncells, machine_config=MachineConfig())
    hive.namespace.mount("/tmp", 1)
    hive.namespace.mount("/usr", 2)
    result = PmakeWorkload().run(Platform(hive))
    faults = hive.total_counter("faults")
    remote = hive.total_counter("faults.remote")
    local_hits = faults - remote
    fault_ns = local_hits * LOCAL_FAULT_NS + remote * REMOTE_FAULT_NS
    return result.elapsed_s, faults, remote, fault_ns


def test_pmake_fault_share(once):
    def run():
        return _run(1), _run(4)

    (t1, faults1, _r1, fault_ns1), (t4, faults4, remote4, fault_ns4) = \
        once(run)

    slowdown_s = t4 - t1
    fault_delta_ms = (fault_ns4 - fault_ns1) / 1e6
    # Cumulative fault time is across processors; wall-clock share
    # divides by the four CPUs, as the paper's 13 % arithmetic does.
    share_pct = (fault_delta_ms / 4) / (slowdown_s * 1e3) * 100

    table = ComparisonTable("Section 5.2 — pmake remote-fault contribution")
    table.add("page-cache-hit faults", PAPER["cache_hit_faults"], faults4)
    table.add("remote on 4 cells", PAPER["remote_faults"], remote4)
    table.add("fault time, 1 cell", PAPER["fault_ms_1cell"],
              round(fault_ns1 / 1e6), "ms cumulative")
    table.add("fault time, 4 cells", PAPER["fault_ms_4cell"],
              round(fault_ns4 / 1e6), "ms cumulative")
    table.add("share of 1→4 cell slowdown", PAPER["share_of_slowdown_pct"],
              round(share_pct, 1), "%")
    table.print()

    # Shape: thousands of faults, roughly half remote on four cells; the
    # fault-time growth is real but a minor slice of the total slowdown.
    assert 4_000 < faults4 < 16_000
    assert 0.25 < remote4 / faults4 < 0.75
    assert fault_ns4 > 2.5 * fault_ns1
    assert 3 < share_pct < 35
