"""Benchmark harness configuration.

Each benchmark boots fresh simulated systems, regenerates one table or
figure from the paper's evaluation, prints a paper-vs-measured comparison
table, and asserts the *shape* of the result (who wins, by roughly what
factor) — absolute times are simulated and deterministic.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``HIVE_BENCH_SCALE`` (default 0.2) to run a larger fraction of the
paper's fault-injection trial counts.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("HIVE_BENCH_SCALE", "0.2"))


@pytest.fixture
def once(benchmark):
    """Run a deterministic simulation exactly once under the timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
