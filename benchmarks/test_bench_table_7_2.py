"""Table 7.2: workload timings on a four-processor machine.

Paper: ocean 6.07 s on IRIX with 1/1/−1 % slowdown on 1/2/4-cell Hive;
raytrace 4.35 s with 0/0/1 %; pmake 5.77 s with 1/10/11 %.
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive, boot_irix
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.workloads import (
    OceanWorkload,
    Platform,
    PmakeWorkload,
    RaytraceWorkload,
)

PAPER_IRIX_SECONDS = {"ocean": 6.07, "raytrace": 4.35, "pmake": 5.77}
PAPER_SLOWDOWN_PCT = {
    "ocean": {1: 1, 2: 1, 4: -1},
    "raytrace": {1: 0, 2: 0, 4: 1},
    "pmake": {1: 1, 2: 10, 4: 11},
}


def _mounts(namespace):
    namespace.mount("/tmp", 1)
    namespace.mount("/usr", 2)
    namespace.mount("/results", 0)


def _run_on_irix(workload_cls):
    sim = Simulator()
    kernel = boot_irix(sim)
    _mounts(kernel.namespace)
    return workload_cls().run(Platform(kernel))


def _run_on_hive(workload_cls, ncells):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=ncells)
    _mounts(hive.namespace)
    return workload_cls().run(Platform(hive))


WORKLOADS = [("ocean", OceanWorkload), ("raytrace", RaytraceWorkload),
             ("pmake", PmakeWorkload)]


@pytest.mark.parametrize("name,workload_cls", WORKLOADS)
def test_table_7_2(name, workload_cls, once):
    def run_all():
        base = _run_on_irix(workload_cls)
        rows = {"irix_s": base.elapsed_s}
        for ncells in (1, 2, 4):
            result = _run_on_hive(workload_cls, ncells)
            assert result.jobs_failed == 0
            assert result.outputs_ok
            rows[ncells] = (result.elapsed_s / base.elapsed_s - 1) * 100
        return rows

    rows = once(run_all)

    table = ComparisonTable(f"Table 7.2 — {name} on 4 CPUs")
    table.add("IRIX 5.2 time", PAPER_IRIX_SECONDS[name],
              round(rows["irix_s"], 2), "s")
    for ncells in (1, 2, 4):
        table.add(f"slowdown, {ncells} cell(s)",
                  PAPER_SLOWDOWN_PCT[name][ncells],
                  round(rows[ncells], 1), "%")
    table.print()

    # Shape assertions: baseline within 5 % of the paper's figure, and
    # the slowdown character matches (pmake pays for cells; the parallel
    # applications barely notice).
    assert abs(rows["irix_s"] - PAPER_IRIX_SECONDS[name]) \
        / PAPER_IRIX_SECONDS[name] < 0.05
    assert abs(rows[1]) < 3.0
    if name == "pmake":
        assert 6.0 < rows[2] < 16.0
        assert 6.0 < rows[4] < 18.0
        assert rows[4] >= rows[2] - 1.0
    else:
        assert abs(rows[2]) < 3.0
        assert abs(rows[4]) < 3.0
