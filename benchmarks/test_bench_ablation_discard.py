"""Ablation: preemptive discard vs keeping pages after a failure.

Section 4.2: "Hive attempts to mask corrupt data by preventing corrupted
pages from being read by applications or written to disk ... all pages
writable by the failed cell are preemptively discarded."  This bench
injects wild writes from a failing cell into a page it had write access
to and shows that (a) with discard, later readers see clean (stale-disk)
data or an I/O error, while (b) skipping the discard step would expose
the corruption.
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE

from tests.helpers import run_program

CLEAN = b"C" * PAGE


def _run_scenario(discard_enabled: bool):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4, machine_config=MachineConfig(seed=3))
    hive.namespace.mount("/srv", 1)
    owner = hive.cell(1)

    def setup(ctx):
        fd = yield from ctx.open("/srv/f", "w", create=True)
        yield from ctx.write(fd, CLEAN)
        yield from ctx.close(fd)

    run_program(hive, 1, setup)
    proc = sim.process(owner.sync_all())  # clean copy on stable storage
    sim.run_until_event(proc, deadline=sim.now + 10**11)

    # Cell 3 maps the page writable (gets the firewall grant) and holds it.
    def writer(ctx):
        region = yield from ctx.map_file("/srv/f", writable=True)
        yield from ctx.touch(region, 0, write=True)
        yield from ctx.compute(60_000_000_000)

    c3 = hive.cell(3)
    p3 = c3.create_process("writer")
    c3.start_thread(p3, writer)
    sim.run(until=sim.now + 100_000_000)

    if not discard_enabled:
        # Neuter the discard step (the ablation).
        owner._preemptive_discard = lambda dead, record: iter(())
        import types

        def no_discard(self, dead, record):
            yield self.sim.timeout(0)
            return 0

        owner._preemptive_discard = types.MethodType(no_discard, owner)

    # The buggy cell scribbles on the granted page, then fails.
    fs = owner.local_fs_for("/srv/f")
    inode = fs.lookup("/srv/f")
    pf = owner.pfdats.lookup((("file", fs.fs_id, inode.ino), 0))
    hive.machine.memory.write_bytes(pf.frame, 64, b"GARBAGE",
                                    cpu=c3.cpu_ids[0])
    hive.machine.halt_node(3)
    sim.run(until=sim.now + 2_000_000_000)

    out = {}

    def reader(ctx):
        fd = yield from ctx.open("/srv/f", "r")
        out["data"] = yield from ctx.read(fd, PAGE)

    run_program(hive, 0, reader, deadline_ns=120_000_000_000)
    return out["data"]


def test_preemptive_discard_masks_wild_writes(once):
    def run():
        return _run_scenario(True), _run_scenario(False)

    with_discard, without_discard = once(run)

    table = ComparisonTable("Ablation — preemptive discard vs none")
    table.add("clean data after failure (discard on)", 1,
              int(with_discard == CLEAN), "bool")
    table.add("corruption exposed (discard off)", 0,
              int(b"GARBAGE" in without_discard), "bool")
    table.print()

    # With discard: the wild write is masked — the reader gets the clean
    # stale copy refetched from disk.
    assert with_discard == CLEAN
    # Without discard: the corrupt bytes reach the application.
    assert b"GARBAGE" in without_discard
