"""Section 4.2: remotely-writable pages under the firewall policy.

Paper (four cells, sampled every 20 ms over 5 s): pmake averaged ~15
remotely writable pages per cell, with a maximum of 42 on the cell acting
as the /tmp file server; ocean averaged ~550 per cell because its data
segment is write-shared by every thread.
"""

import statistics

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.sim.engine import Simulator
from repro.workloads import OceanWorkload, Platform, PmakeWorkload

PAPER_PMAKE_AVG = 15
PAPER_PMAKE_MAX = 42
PAPER_OCEAN_AVG = 550


def _sampled_run(workload):
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4, machine_config=MachineConfig())
    hive.namespace.mount("/tmp", 1)
    hive.namespace.mount("/usr", 2)
    hive.namespace.mount("/results", 0)
    samples = {c: [] for c in range(4)}

    def sampler():
        while True:
            yield sim.timeout(20_000_000)  # the paper's 20 ms interval
            for c in range(4):
                cell = hive.registry.cell_object(c)
                if cell is not None and cell.alive:
                    samples[c].append(
                        cell.firewall_mgr.remotely_writable_pages())

    sim.process(sampler(), name="page-sampler")
    workload.run(Platform(hive))
    return samples


def test_pmake_writable_pages(once):
    samples = once(_sampled_run, PmakeWorkload())
    per_cell_avg = {c: statistics.mean(s) for c, s in samples.items() if s}
    per_cell_max = {c: max(s) for c, s in samples.items() if s}
    overall_avg = statistics.mean(
        v for s in samples.values() for v in s)
    overall_max = max(per_cell_max.values())

    table = ComparisonTable(
        "Section 4.2 — remotely writable pages under pmake")
    table.add("average per cell", PAPER_PMAKE_AVG,
              round(overall_avg, 1), "pages")
    table.add("maximum (on a file-server cell)", PAPER_PMAKE_MAX,
              overall_max, "pages")
    for c in range(4):
        table.add(f"  cell {c} avg / max", None,
                  round(per_cell_avg[c], 1), f"max {per_cell_max[c]}")
    table.print()

    # Shape: a small steady population (not hundreds), peaking on the
    # file-server cells.
    assert overall_avg < 60
    assert 5 <= overall_max <= 120
    file_server_cells = {1, 2}  # /tmp and /usr
    assert max(per_cell_max, key=per_cell_max.get) in file_server_cells


def test_ocean_writable_pages(once):
    samples = once(_sampled_run, OceanWorkload())
    per_cell_avg = {c: statistics.mean(s) for c, s in samples.items() if s}

    table = ComparisonTable(
        "Section 4.2 — remotely writable pages under ocean")
    for c in range(4):
        table.add(f"cell {c} average", PAPER_OCEAN_AVG,
                  round(per_cell_avg[c]), "pages")
    table.print()

    # Shape: hundreds per cell — the whole write-shared data segment —
    # evenly spread, within ~25 % of the paper's 550.
    for c in range(4):
        assert 400 <= per_cell_avg[c] <= 700

    # The qualitative contrast with pmake (15 vs 550) is the policy
    # evaluation headline: both must hold in one run of this module.
