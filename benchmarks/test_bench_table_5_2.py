"""Table 5.2: components of the remote page-fault latency.

Paper: local fault 6.9 us; remote fault 50.7 us averaged across 1,024
faults that hit in the data home page cache, broken into client cell
(28.0), data home (5.4), and RPC (17.3) components.
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.unix.costs import DEFAULT_COSTS
from repro.workloads.micro import boot_two_cell, measure_page_fault

PAPER_TOTAL_LOCAL = 6_900
PAPER_TOTAL_REMOTE = 50_700
PAPER_COMPONENTS = {
    "client: file system": 9_000,
    "client: locking overhead": 5_500,
    "client: misc VM (incl. hash)": 8_700,
    "client: import page": 4_800,
    "data home: misc VM": 3_400,
    "data home: export page": 2_000,
    "rpc: stubs and subsystem": 4_900,
    "rpc: hw message and interrupts": 4_700,
    "rpc: arg/result copy": 4_000,
    "rpc: alloc/free": 3_700,
}


def test_table_5_2(once):
    def run():
        local = measure_page_fault(boot_two_cell(), remote=False,
                                   nfaults=1024)
        remote = measure_page_fault(boot_two_cell(), remote=True,
                                    nfaults=1024)
        return local, remote

    local, remote = once(run)

    costs = DEFAULT_COSTS
    params_sips = 2 * (700 + 300)
    modelled = {
        "client: file system": costs.fault_client_fs_ns,
        "client: locking overhead": costs.fault_client_locking_ns,
        "client: misc VM (incl. hash)": (costs.fault_client_misc_vm_ns
                                         + costs.pfdat_hash_lookup_ns),
        "client: import page": costs.fault_client_import_ns,
        "data home: misc VM": costs.fault_home_misc_vm_ns,
        "data home: export page": costs.fault_home_export_ns,
        "rpc: stubs and subsystem": costs.rpc_stub_ns,
        "rpc: hw message and interrupts": (
            params_sips + 2 * costs.rpc_interrupt_dispatch_ns),
        "rpc: arg/result copy": costs.rpc_copy_ns,
        "rpc: alloc/free": costs.rpc_alloc_ns,
    }

    table = ComparisonTable("Table 5.2 — remote page fault latency")
    table.add("total local page fault", PAPER_TOTAL_LOCAL / 1e3,
              local["mean_ns"] / 1e3, "us")
    table.add("total remote page fault", PAPER_TOTAL_REMOTE / 1e3,
              remote["mean_ns"] / 1e3, "us")
    for row, paper_ns in PAPER_COMPONENTS.items():
        table.add(row, paper_ns / 1e3, modelled[row] / 1e3, "us")
    table.print()

    assert abs(local["mean_ns"] - PAPER_TOTAL_LOCAL) < 200
    assert abs(remote["mean_ns"] - PAPER_TOTAL_REMOTE) < 1_000
    # The component model must actually add up to the measured total.
    assert abs(sum(modelled.values()) - remote["mean_ns"]) < 1_500
    # Remote/local ratio ~7.4x (the headline of the table).
    ratio = remote["mean_ns"] / local["mean_ns"]
    assert 6.5 < ratio < 8.0


def test_remote_fault_identical_with_fast_path_off(once):
    """Every Table 5.2 fault crosses the RPC path; the HIVE_RPC_FAST
    escape hatch must not move a single simulated nanosecond of it."""

    def run():
        fast = measure_page_fault(boot_two_cell(), remote=True,
                                  nfaults=256)
        system = boot_two_cell()
        for cell in system.cells:
            cell.rpc.fast_enabled = False
        slow = measure_page_fault(system, remote=True, nfaults=256)
        return fast, slow

    fast, slow = once(run)
    assert fast == slow
