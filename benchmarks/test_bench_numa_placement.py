"""Extension bench: CC-NUMA placement via physical-level sharing.

Section 5.4 motivates frame loaning with NUMA locality: "Physical-level
sharing balances memory pressure across the machine and allows data pages
to be placed where required for fast access on a CC-NUMA machine", and
Section 5.5's loan+reimport interaction exists so "the data home places a
page in the memory of the client cell that has faulted to it".

The paper's machine model fixed remote misses at the FLASH average, so it
could not show this effect; with the hop-sensitive network enabled the
placement benefit becomes measurable.  This bench compares the steady-
state access latency of a hot page (a) cached in the data home's memory
vs (b) placed in a frame the client loaned to the data home.
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator


def _boot():
    params = HardwareParams(num_nodes=4)
    sim = Simulator()
    return boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(
                         params=params, hop_sensitive_network=True))


def _stream_reads(hive, cpu, frame, lines=64):
    """Average read latency over a page's lines (cold caches)."""
    params = hive.params
    base = frame * params.page_size
    total = 0
    for i in range(lines):
        total += hive.machine.coherence.read(cpu,
                                             base + i * params.cache_line_size)
    return total / lines


def test_numa_placement_benefit(once):
    def run():
        hive = _boot()
        client, data_home = hive.cell(0), hive.cell(3)  # mesh corners

        # (a) page in the data home's own memory.
        remote_pf = data_home.pfdats.alloc_frame()
        remote_lat = _stream_reads(hive, client.cpu_ids[0],
                                   remote_pf.frame)

        # (b) data home borrows a frame from the client's node and places
        # the page there (the Section 5.5 optimization).
        def borrow():
            result = yield from data_home.rpc.call(
                0, "borrow_frames", {"count": 1})
            return result["frames"][0]

        proc = hive.sim.process(borrow())
        hive.sim.run_until_event(proc, deadline=hive.sim.now + 10**10)
        local_frame = proc.value
        assert hive.params.node_of_frame(local_frame) in client.node_ids
        local_lat = _stream_reads(hive, client.cpu_ids[0], local_frame)
        hops = hive.machine.interconnect.hops(0, 3)
        return remote_lat, local_lat, hops

    remote_lat, local_lat, hops = once(run)

    table = ComparisonTable(
        "Extension — NUMA page placement via frame loaning "
        "(hop-sensitive network)")
    table.add("read from data home's memory", None,
              round(remote_lat), "ns/line")
    table.add("read after loan+placement", None,
              round(local_lat), "ns/line")
    table.add("saving", None,
              round((1 - local_lat / remote_lat) * 100, 1), "%")
    table.add("mesh hops avoided", None, hops)
    table.print()

    # Placement in the client's node memory must be measurably faster.
    assert local_lat < remote_lat
    assert remote_lat - local_lat >= hops * 40  # roughly hop cost


def test_flat_network_shows_no_difference(once):
    """Control: with the paper's flat 700 ns model, placement is
    latency-neutral (why the paper couldn't measure this)."""

    def run():
        params = HardwareParams(num_nodes=4)
        sim = Simulator()
        hive = boot_hive(sim, num_cells=4,
                         machine_config=MachineConfig(params=params))
        client, data_home = hive.cell(0), hive.cell(3)
        pf = data_home.pfdats.alloc_frame()
        lat = _stream_reads(hive, client.cpu_ids[0], pf.frame)
        return lat

    lat = once(run)
    assert lat == pytest.approx(700, abs=1)
