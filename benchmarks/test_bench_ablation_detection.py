"""Ablation: clock-check frequency vs detection latency (Section 3.1).

"The window of vulnerability can be reduced by increasing the frequency
of checks during normal operation.  This is another tradeoff between
fault containment and performance."  We sweep the clock tick period and
measure (a) the detection latency of a node failure and (b) the
monitoring overhead (careful-reference reads per second of run time).
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import NS_PER_MS
from repro.sim.engine import Simulator
from repro.unix.costs import KernelCosts


def _detection_latency(tick_ms, inject_at_ms=203):
    sim = Simulator()
    costs = KernelCosts(clock_tick_ns=tick_ms * NS_PER_MS)
    hive = boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=tick_ms),
                     costs=costs)
    hive.injector.inject_at(inject_at_ms * NS_PER_MS,
                            FaultInjector.NODE_FAILURE, 3)
    sim.run(until=sim.now + 5_000 * NS_PER_MS)
    if not hive.coordinator.records:
        return None, 0
    record = hive.coordinator.records[0]
    latency_ms = (record.last_entry_ns - inject_at_ms * NS_PER_MS) / 1e6
    checks = sum(c.detector.clock_checks for c in hive.cells if c.alive)
    return latency_ms, checks


def test_detection_latency_vs_check_frequency(once):
    def run():
        return {tick: _detection_latency(tick)
                for tick in (2, 10, 50, 100)}

    results = once(run)

    table = ComparisonTable(
        "Ablation — clock tick period vs detection latency")
    for tick, (latency, checks) in sorted(results.items()):
        table.add(f"{tick} ms ticks: detection latency", None,
                  round(latency, 1) if latency else None, "ms")
        table.add(f"{tick} ms ticks: monitor checks in 5 s", None, checks)
    table.print()

    latencies = {tick: lat for tick, (lat, _c) in results.items()}
    checks = {tick: c for tick, (_l, c) in results.items()}
    # Every configuration detects the failure.
    assert all(lat is not None for lat in latencies.values())
    # Faster ticks detect faster but cost proportionally more checks —
    # the paper's stated tradeoff.
    assert latencies[2] < latencies[100]
    assert checks[2] > 5 * checks[50]
