"""Ablation: firewall granularity alternatives (Section 4.2).

The paper chose a 64-bit vector per page after rejecting (a) a single
global-write bit per page — "no fault containment for processes that use
any remote memory" — and (b) one processor id per page — "would prevent
the scheduler in each cell from balancing the load on its processors".
This bench quantifies both: the discard blast radius under (a) and the
forced firewall churn under (b).
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.core.hive import boot_hive
from repro.hardware.firewall import (
    NodeFirewall,
    SingleBitFirewall,
    SingleProcessorFirewall,
)
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim.engine import Simulator
from repro.unix.fs import PAGE

from tests.helpers import run_program


def _boot(firewall_factory):
    sim = Simulator()
    hive = boot_hive(
        sim, num_cells=4,
        machine_config=MachineConfig(firewall_factory=firewall_factory))
    hive.namespace.mount("/srv", 1)
    return hive


def _share_pages(hive, writer_cell=3, npages=8):
    """Cell 1 serves a file; ``writer_cell`` write-imports its pages."""

    def setup(ctx):
        fd = yield from ctx.open("/srv/f", "w", create=True)
        yield from ctx.write(fd, b"s" * npages * PAGE)
        yield from ctx.close(fd)

    run_program(hive, 1, setup)

    def importer(ctx):
        region = yield from ctx.map_file("/srv/f", writable=True)
        for p in range(region.npages):
            yield from ctx.touch(region, p, write=True)
        yield from ctx.compute(60_000_000_000)

    cell = hive.cell(writer_cell)
    proc = cell.create_process("importer")
    cell.start_thread(proc, importer)
    hive.sim.run(until=hive.sim.now + 300_000_000)


def _pages_writable_by_cell(hive, cell_id):
    cpu0 = cell_id * hive.params.cpus_per_node
    count = 0
    for node in range(hive.params.num_nodes):
        if node // 1 == cell_id:
            continue
        fw = hive.machine.memory.firewalls[node]
        for frame in fw.remote_writable_frames():
            if fw.allows(frame, cpu0):
                count += 1
    return count


def test_bit_vector_vs_single_bit_blast_radius(once):
    """With one bit per page, sharing with ONE cell makes pages writable
    by EVERY cell: a failure anywhere discards them all."""

    def run():
        results = {}
        for label, factory in (("bit-vector", NodeFirewall),
                               ("single-bit", SingleBitFirewall)):
            hive = _boot(factory)
            _share_pages(hive, writer_cell=3)
            # Cell 2 never touched the file.  How many of cell 1's pages
            # could a *cell 2* failure corrupt (and force discarding)?
            results[label] = _pages_writable_by_cell(hive, 2)
        return results

    results = once(run)
    table = ComparisonTable(
        "Ablation — discard blast radius of an uninvolved cell's failure")
    table.add("bit-vector firewall", 0, results["bit-vector"], "pages")
    table.add("single-bit firewall", None, results["single-bit"], "pages")
    table.print()

    assert results["bit-vector"] == 0
    assert results["single-bit"] >= 8  # every shared page is exposed


def test_single_processor_firewall_blocks_rescheduling(once):
    """With one processor named per page, moving the writing process to
    the cell's other CPU loses access — the load-balancing failure the
    paper rejected the design for."""

    def run():
        params = HardwareParams(num_nodes=2, cpus_per_node=2)
        fw = SingleProcessorFirewall(params, node_id=0)
        frame = 0
        fw.grant_cpu(frame, 0, grantee_cpu=2)  # node 1, first CPU
        after_first = fw.allows(frame, 2), fw.allows(frame, 3)
        fw.grant_cpu(frame, 0, grantee_cpu=3)  # reschedule to second CPU
        after_second = fw.allows(frame, 2), fw.allows(frame, 3)
        # The vector design keeps both CPUs writable with ONE update.
        vec = NodeFirewall(params, node_id=0)
        vec.grant_node(frame, 0, grantee_node=1)
        vec_both = vec.allows(frame, 2), vec.allows(frame, 3)
        return after_first, after_second, vec_both, fw.updates, vec.updates

    after_first, after_second, vec_both, sp_updates, vec_updates = once(run)
    table = ComparisonTable(
        "Ablation — rescheduling under per-processor vs vector firewall")
    table.add("updates for both CPUs (per-proc)", None, sp_updates)
    table.add("updates for both CPUs (vector)", None, vec_updates)
    table.print()

    assert after_first == (True, False)
    assert after_second == (False, True)  # first CPU lost access!
    assert vec_both == (True, True)
    assert vec_updates < sp_updates
