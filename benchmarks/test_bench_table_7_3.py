"""Table 7.3: local vs remote latency for kernel operations.

Paper (two-processor two-cell system, warm file cache):

==============================  =======  =======  ============
operation                       local    remote   remote/local
==============================  =======  =======  ============
4 MB file read                  65.0 ms  76.2 ms  1.2
4 MB file write/extend          83.7 ms  87.3 ms  1.1
open file                       148 us   580 us   3.9
page fault hit in file cache    6.9 us   50.7 us  7.4
==============================  =======  =======  ============
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.workloads.micro import (
    boot_two_cell,
    measure_file_ops,
    measure_page_fault,
)

PAPER = {
    "read4mb": (65.0e6, 76.2e6, 1.2),
    "write4mb": (83.7e6, 87.3e6, 1.1),
    "open": (148e3, 580e3, 3.9),
    "fault": (6.9e3, 50.7e3, 7.4),
}


def test_table_7_3(once):
    def run():
        local_ops = measure_file_ops(boot_two_cell(), remote=False)
        remote_ops = measure_file_ops(boot_two_cell(), remote=True)
        local_fault = measure_page_fault(boot_two_cell(), remote=False,
                                         nfaults=256)
        remote_fault = measure_page_fault(boot_two_cell(), remote=True,
                                          nfaults=256)
        return {
            "read4mb": (local_ops["read4mb_ns"], remote_ops["read4mb_ns"]),
            "write4mb": (local_ops["write4mb_ns"],
                         remote_ops["write4mb_ns"]),
            "open": (local_ops["open_ns"], remote_ops["open_ns"]),
            "fault": (local_fault["mean_ns"], remote_fault["mean_ns"]),
        }

    measured = once(run)

    table = ComparisonTable("Table 7.3 — local vs remote kernel operations")
    for op, (p_local, p_remote, p_ratio) in PAPER.items():
        m_local, m_remote = measured[op]
        table.add(f"{op} local", p_local / 1e3, m_local / 1e3, "us")
        table.add(f"{op} remote", p_remote / 1e3, m_remote / 1e3, "us")
        table.add(f"{op} remote/local", p_ratio,
                  round(m_remote / m_local, 2), "x")
    table.print()

    for op, (p_local, p_remote, p_ratio) in PAPER.items():
        m_local, m_remote = measured[op]
        assert abs(m_local - p_local) / p_local < 0.05, op
        assert abs(m_remote - p_remote) / p_remote < 0.07, op
        # The ordering claim: complex ops cheap to remote, quick ops
        # expensive to remote.
        assert abs(m_remote / m_local - p_ratio) / p_ratio < 0.15, op
