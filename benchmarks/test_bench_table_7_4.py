"""Table 7.4: fault injection test results.

Paper (four-processor four-cell Hive, agreement oracle):

=============================================  ======  =======  =======
injected fault and workload                    #tests  avg ms   max ms
=============================================  ======  =======  =======
node failure during process creation (pmake)   20      16       21
node failure during COW search (raytrace)       9       10       11
node failure at random time (pmake)             20      21       45
corrupt pointer in process address map (pmake)  8       38       65
corrupt pointer in COW tree (raytrace)          12      401      760
=============================================  ======  =======  =======

"In all tests Hive successfully contained the effects of the fault to the
cell in which it was injected" — 49 hardware + 20 software injections.

Trial counts here are ``paper count x HIVE_BENCH_SCALE`` (default 0.2)
because every trial is a full workload run; set the env var to 1.0 to run
the paper's full 69 trials.
"""

import pytest

from repro.bench.faultexp import (
    ALL_SCENARIOS,
    PAPER_TABLE_7_4,
    FaultExperimentRunner,
)
from repro.bench.report import ComparisonTable

from conftest import bench_scale


def test_table_7_4(once):
    runner = FaultExperimentRunner(agreement="oracle")

    def run():
        return runner.run_table_7_4(scale=bench_scale())

    summaries = once(run)

    table = ComparisonTable("Table 7.4 — fault injection results")
    total_trials = 0
    total_contained = 0
    for scenario in ALL_SCENARIOS:
        workload, n_paper, avg_paper, max_paper = PAPER_TABLE_7_4[scenario]
        summary = summaries[scenario]
        total_trials += len(summary.trials)
        total_contained += summary.contained_count
        table.add(f"{scenario} ({workload}) avg", avg_paper,
                  round(summary.avg_latency_ms, 1), "ms")
        table.add(f"{scenario} ({workload}) max", max_paper,
                  round(summary.max_latency_ms, 1), "ms")
        table.add(f"{scenario} contained",
                  n_paper, f"{summary.contained_count}/"
                           f"{len(summary.trials)}", "trials")
    recovery_ms = [t.recovery_duration_ns / 1e6
                   for s in summaries.values() for t in s.trials
                   if t.recovery_duration_ns is not None]
    table.add("recovery latency min", 40,
              round(min(recovery_ms), 1), "ms")
    table.add("recovery latency max", 80,
              round(max(recovery_ms), 1), "ms")
    table.print()

    # Recovery itself stays within (roughly) the paper's 40-80 ms band.
    assert 25 <= min(recovery_ms) and max(recovery_ms) <= 110

    # The headline: 100 % containment.
    assert total_contained == total_trials

    # Latency shape: hardware detection in tens of ms (clock-monitor
    # bound); address-map corruption slower; COW-tree corruption far
    # slower (hundreds of ms — traversal-rate bound).
    hw = summaries["hw_process_creation"].avg_latency_ms
    rand = summaries["hw_random"].avg_latency_ms
    addr = summaries["sw_address_map"].avg_latency_ms
    cow = summaries["sw_cow_tree"].avg_latency_ms
    assert 4 <= hw <= 40
    assert 4 <= rand <= 60
    assert addr <= 120
    assert cow >= 3 * max(hw, rand)
    assert cow <= 1_000
