"""Section 6: RPC performance.

Paper: minimum null interrupt-level RPC 7.2 us (2 us SIPS); a typical
argument-carrying interrupt-level RPC ~9.6 us of RPC overhead (17.3 us
with copy/alloc per Table 5.2); minimum null queued RPC 34 us.  The gap
between interrupt-level and queued service is the reason Hive
restructured its data structures to serve common RPCs at interrupt level.
"""

import pytest

from repro.bench.report import ComparisonTable
from repro.workloads.micro import boot_two_cell, measure_rpc

PAPER_NULL_RPC = 7_200
PAPER_QUEUED_RPC = 34_000
PAPER_SIPS_ONE_WAY = 1_000  # IPI 700 ns + 300 ns data access


def test_rpc_latency(once):
    def run():
        system = boot_two_cell()
        interrupt = measure_rpc(system, queued=False)
        queued = measure_rpc(system, queued=True)
        sips = system.params.sips_latency_ns()
        return interrupt, queued, sips

    interrupt, queued, sips = once(run)

    table = ComparisonTable("Section 6 — intercell RPC latency")
    table.add("SIPS one-way delivery", PAPER_SIPS_ONE_WAY, sips, "ns")
    table.add("null interrupt-level RPC", PAPER_NULL_RPC / 1e3,
              interrupt["mean_ns"] / 1e3, "us")
    table.add("null queued RPC", PAPER_QUEUED_RPC / 1e3,
              queued["mean_ns"] / 1e3, "us")
    table.add("queued / interrupt ratio",
              round(PAPER_QUEUED_RPC / PAPER_NULL_RPC, 1),
              round(queued["mean_ns"] / interrupt["mean_ns"], 1), "x")
    table.print()

    assert abs(interrupt["mean_ns"] - PAPER_NULL_RPC) < 300
    assert abs(queued["mean_ns"] - PAPER_QUEUED_RPC) < 2_000
    # The structural claim: queued service costs several times the
    # interrupt-level path, which is why the fast path matters.
    assert queued["mean_ns"] / interrupt["mean_ns"] > 3.0


def test_rpc_latency_identical_with_fast_path_off(once):
    """The HIVE_RPC_FAST escape hatch is perf-only: the fast and slow
    dispatch paths must measure byte-identical simulated latencies."""

    def run():
        fast_sys = boot_two_cell()
        fast = (measure_rpc(fast_sys, queued=False),
                measure_rpc(fast_sys, queued=True))
        slow_sys = boot_two_cell()
        for cell in slow_sys.cells:
            cell.rpc.fast_enabled = False
        slow = (measure_rpc(slow_sys, queued=False),
                measure_rpc(slow_sys, queued=True))
        return fast, slow

    fast, slow = once(run)
    assert fast == slow


def test_interrupt_vs_queued_service_mix_ablation(once):
    """Ablation: a Hive that served page-fault exports only through the
    queued path would inflate every remote fault by the queue overhead —
    quantifies why the paper restructured locking for interrupt-level
    service (Section 6)."""
    from repro.workloads.micro import measure_page_fault

    def run():
        fast = measure_page_fault(boot_two_cell(), remote=True,
                                  nfaults=128)["mean_ns"]
        system = boot_two_cell()
        # Re-register the export handler as queued-only.
        for cell in system.cells:
            handler, _cls = cell.rpc._handlers["export_page"]
            cell.rpc.register("export_page", handler, "queued")
        slow = measure_page_fault(system, remote=True,
                                  nfaults=128)["mean_ns"]
        return fast, slow

    fast, slow = once(run)
    table = ComparisonTable(
        "Ablation — remote fault with interrupt-level vs queued export")
    table.add("interrupt-level service", 50.7, fast / 1e3, "us")
    table.add("queued-only service", None, slow / 1e3, "us")
    table.print()
    assert slow > fast + 20_000  # queue overhead dominates the fast path
