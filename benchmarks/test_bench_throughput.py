"""Simulator throughput benchmark (PR 3): events/sec and accesses/sec.

Unlike the paper-reproduction benchmarks, this one measures *wall-clock*
simulator performance on the fixed fault-injection scenario from
:mod:`repro.bench.throughput`.  The simulated side of the scenario is
fully deterministic; the benchmark asserts that determinism (two runs
produce identical event/access/discard counts) and that the scenario
really exercises the fault path (recovery detected, pages discarded),
then reports the throughput numbers.

Regenerate the committed ``BENCH_pr3.json`` with::

    PYTHONPATH=src python -m repro bench --config all
"""

import pytest

from repro.bench.throughput import (
    BENCH_SCHEMA,
    CONFIGS,
    run_suite,
    run_throughput,
    validate_payload,
)


def test_small_config_shape(once):
    row = once(run_throughput, "small")
    assert row["recovery_detected"], "victim failure was never recovered"
    assert row["discarded_pages"] == CONFIGS["small"].shared_frames_per_cell
    assert row["events"] > 10_000
    assert row["accesses"] > 100_000
    assert row["events_per_sec"] > 0
    assert row["accesses_per_sec"] > 0
    assert row["samples"] > 0
    # The Section 4.2 sampler saw the granted pages while they existed.
    assert row["writable_page_samples"] > 0
    print(f"\nsmall: {row['events_per_sec']:,.0f} events/sec, "
          f"{row['accesses_per_sec']:,.0f} accesses/sec, "
          f"recovery {row['recovery_wall_ms']:.1f} ms wall")


def test_simulated_side_is_deterministic():
    a = run_throughput("small", seed=7)
    b = run_throughput("small", seed=7)
    sim_keys = ("events", "accesses", "driver_accesses", "discarded_pages",
                "writable_page_samples", "samples", "recovery_detected")
    assert {k: a[k] for k in sim_keys} == {k: b[k] for k in sim_keys}


def test_payload_schema_roundtrip():
    payload = run_suite(["small"], seed=3)
    assert payload["schema"] == BENCH_SCHEMA
    validate_payload(payload)  # must not raise
    with pytest.raises(ValueError):
        validate_payload({"schema": BENCH_SCHEMA, "results": {}})
    broken = {"schema": BENCH_SCHEMA,
              "results": {"small": {"config": "small"}}}
    with pytest.raises(ValueError):
        validate_payload(broken)
