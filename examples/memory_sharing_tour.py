#!/usr/bin/env python3
"""Tour of the Section 5 memory-sharing machinery.

Walks through the paper's Figure 5.3 scenarios against live kernels:

* logical-level sharing — a client cell imports a data page cached at
  its data home through export/import, with the extended pfdat visible
  in the client's hash table and the firewall grant at the data home;
* physical-level sharing — a cell under memory pressure borrows page
  frames from a memory home, which parks them on its reserved list;
* the Section 5.5 interaction — a loaned frame reimported by its memory
  home reuses the preexisting pfdat.

Run:  python examples/memory_sharing_tour.py
"""

from repro.core import boot_hive
from repro.sim import Simulator
from repro.unix.fs import PAGE


def run(sim, gen, label):
    proc = sim.process(gen, name=label)
    sim.run_until_event(proc, deadline=sim.now + 60_000_000_000)
    if not proc.ok:
        raise proc._value
    return proc.value


def main() -> None:
    sim = Simulator()
    hive = boot_hive(sim, num_cells=2)
    # On a 4-node machine split into two cells, cell 1 owns nodes {2,3};
    # serve /data from its first node so the client's accesses go remote.
    hive.namespace.mount("/data", hive.cell(1).node_ids[0])
    client, home = hive.cell(0), hive.cell(1)

    # ------------------------------------------------------------------
    # Logical-level sharing (Figure 5.3a)
    # ------------------------------------------------------------------
    print("== logical-level sharing ==")
    done = {}

    def writer(ctx):
        fd = yield from ctx.open("/data/page", "w", create=True)
        yield from ctx.write(fd, b"D" * PAGE)
        yield from ctx.close(fd)

    proc = home.create_process("writer")
    thread = home.start_thread(proc, writer)
    sim.run_until_event(thread.sim_process, deadline=sim.now + 10**11)

    def importer(ctx):
        region = yield from ctx.map_file("/data/page", writable=True)
        t0 = ctx.sim.now
        pte = yield from ctx.touch(region, 0, write=True)
        done["fault_us"] = (ctx.sim.now - t0) / 1e3
        done["frame"] = pte.frame
        pf = client.pfdats.by_frame(pte.frame)
        print(f"  remote fault latency : {done['fault_us']:.1f} us "
              f"(paper: 50.7)")
        print(f"  imported frame       : {pte.frame} "
              f"(node {hive.params.node_of_frame(pte.frame)}, "
              f"extended pfdat: {pf.extended})")
        print(f"  data home grants     : "
              f"{home.firewall_mgr.remotely_writable_pages()} page(s) "
              "writable by the client cell")
        # Model a TLB shootdown: the hardware mapping drops but the
        # import stays cached, so the next fault hits the client hash.
        old_pte = ctx.process.aspace.unmap_page(client.kernel_id,
                                                region.start_vpn)
        t0 = ctx.sim.now
        new_pte = yield from ctx.touch(region, 0, write=True)
        new_pte.pfdat.refcount -= 1  # the shot-down mapping's reference
        print(f"  re-fault (client hit): {(ctx.sim.now - t0)/1e3:.1f} us "
              f"(paper local: 6.9)")

    proc = client.create_process("importer")
    thread = client.start_thread(proc, importer)
    sim.run_until_event(thread.sim_process, deadline=sim.now + 10**11)
    sim.run(until=sim.now + 50_000_000)
    print(f"  after process exit   : grants revoked -> "
          f"{home.firewall_mgr.remotely_writable_pages()} writable pages")

    # ------------------------------------------------------------------
    # Physical-level sharing (Figure 5.3b)
    # ------------------------------------------------------------------
    print("\n== physical-level sharing ==")

    def borrow():
        result = yield from client.rpc.call(1, "borrow_frames",
                                            {"count": 4})
        return result["frames"]

    frames = run(sim, borrow(), "borrow")
    print(f"  borrowed frames      : {frames} from cell 1")
    print(f"  memory home reserved : "
          f"{sorted(home.pfdats.reserved)} (parked, ignored)")
    pf = client.pfdats.alloc_extended(frames[0])
    pf.borrowed_from = 1
    print(f"  borrower manages     : frame {pf.frame} via extended pfdat")
    client.return_borrowed_frame(pf)
    for f in frames[1:]:
        pf = client.pfdats.alloc_extended(f)
        pf.borrowed_from = 1
        client.return_borrowed_frame(pf)
    sim.run(until=sim.now + 100_000_000)
    print(f"  after return         : reserved list = "
          f"{sorted(home.pfdats.reserved)}")

    # ------------------------------------------------------------------
    # Loan + reimport (Section 5.5)
    # ------------------------------------------------------------------
    print("\n== loaned frame reimported by its memory home ==")

    def borrow_one():
        result = yield from home.rpc.call(0, "borrow_frames", {"count": 1})
        return result["frames"][0]

    frame = run(sim, borrow_one(), "borrow-one")
    reserved_pf = client.pfdats.reserved[frame]
    imported = client.import_page(frame, data_home=1,
                                  logical_id=(("file", 1, 7), 0),
                                  is_writable=False)
    print(f"  frame {frame}: loaned to cell 1, reimported by cell 0")
    print(f"  reuses regular pfdat : {imported is reserved_pf}")
    print(f"  physical state       : loaned_to={imported.loaned_to}")
    print(f"  logical state        : imported_from="
          f"{imported.imported_from}")


if __name__ == "__main__":
    main()
