#!/usr/bin/env python3
"""Fault containment demo: kill a cell under a live workload.

Reproduces the paper's core claim interactively: a parallel make is
running across four cells; one cell's node fail-stops mid-run; the other
cells detect the failure (clock monitoring), agree on the new live set,
run the double-barrier recovery with preemptive discard, and keep
working.  Output files are then compared against reference copies — the
paper's corruption check.

Run:  python examples/fault_containment_demo.py
"""

from repro.core import boot_hive
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.sim import Simulator
from repro.sim.trace import CAT_DETECT, attach_tracing
from repro.workloads import Platform, PmakeWorkload


def main() -> None:
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=42),
                     agreement="voting")
    trace = attach_tracing(hive)
    hive.namespace.mount("/tmp", 1)
    hive.namespace.mount("/usr", 2)
    platform = Platform(hive)
    workload = PmakeWorkload()

    # Fail-stop node 3 (cell 3) one second into the timed run.
    injected = {}

    def note(record):
        injected["at_ms"] = record.time_ns / 1e6
        print(f"[{record.time_ns/1e6:9.2f} ms] !! node {record.node_id} "
              f"fail-stops ({record.kind})")

    hive.injector.observers.append(note)

    def schedule_fault():
        hive.injector.inject_at(sim.now + 1_000_000_000,
                                FaultInjector.NODE_FAILURE, 3)

    orig_driver = workload.driver_program

    def hooked(platform_, box):
        schedule_fault()
        return orig_driver(platform_, box)

    workload.driver_program = hooked

    print("running pmake on 4 cells; cell 3 will die mid-run...\n")
    result = workload.run(platform)

    record = next(r for r in hive.coordinator.records
                  if 3 in r.dead_cells)
    detect_ms = (record.last_entry_ns - injected["at_ms"] * 1e6) / 1e6
    print(f"[{record.hint_time_ns/1e6:9.2f} ms] first failure hint: "
          f"{record.detection_reason}")
    print(f"[{record.last_entry_ns/1e6:9.2f} ms] all survivors in "
          f"recovery (+{detect_ms:.1f} ms after the fault; "
          f"paper: 16-45 ms)")
    print(f"[{record.recovery_done_ns/1e6:9.2f} ms] recovery complete: "
          f"{record.discarded_pages} pages discarded, "
          f"{record.files_lost} files lost, "
          f"{record.killed_processes} processes killed")

    print(f"\nworkload finished at {result.elapsed_s:.2f} s simulated")
    print(f"jobs completed/failed : {result.jobs_completed}/"
          f"{result.jobs_failed}")
    print(f"surviving cells       : {hive.registry.live_cell_ids()}")
    print(f"output files clean    : {result.outputs_ok}")

    # The paper's post-fault correctness check: a fresh pmake forking on
    # every surviving cell.
    check = PmakeWorkload(src_dir="/check/src", tmp_dir="/check/tmp",
                          num_files=4, compute_per_job_ns=50_000_000)
    hive.namespace.mount("/check", 0)
    check_result = check.run(platform)
    print(f"correctness check     : "
          f"{'PASS' if check_result.jobs_failed == 0 and check_result.outputs_ok else 'FAIL'}")

    print("\ndetection timeline (first five hints):")
    for event in trace.select(category=CAT_DETECT)[:5]:
        print("  " + event.render())


if __name__ == "__main__":
    main()
