#!/usr/bin/env python3
"""Quickstart: boot a four-cell Hive and run programs on it.

Demonstrates the public API end to end:

* boot a simulated FLASH machine partitioned into four cells;
* run UNIX-style programs (open/read/write/fork/wait) against it;
* cross cell boundaries transparently — the file lives on one cell,
  the process on another — and inspect the sharing machinery;
* measure a couple of the paper's headline latencies.

Run:  python examples/quickstart.py
"""

from repro.core import boot_hive
from repro.sim import Simulator
from repro.workloads.micro import (
    boot_two_cell,
    measure_careful_reference,
    measure_page_fault,
    measure_rpc,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Boot: 4 nodes (1 CPU + 32 MB + disk each), one cell per node.
    # ------------------------------------------------------------------
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4)
    hive.namespace.mount("/tmp", 1)  # cell 1 serves /tmp
    print(f"booted {len(hive.cells)} cells on "
          f"{hive.params.num_nodes} nodes")

    # ------------------------------------------------------------------
    # 2. Programs are coroutines that receive a syscall context.
    # ------------------------------------------------------------------
    results = {}

    def producer(ctx):
        fd = yield from ctx.open("/tmp/greeting", "w", create=True)
        yield from ctx.write(fd, b"hello from cell %d"
                             % ctx.kernel.kernel_id)
        yield from ctx.close(fd)
        yield from ctx.compute(5_000_000)  # 5 ms of user CPU time

    def consumer(ctx):
        # Spawn the producer onto another cell, wait, then read the
        # file (served remotely by cell 1).
        pid = yield from ctx.spawn(producer, "producer", target_cell=2)
        status = yield from ctx.waitpid(pid)
        fd = yield from ctx.open("/tmp/greeting", "r")
        data = yield from ctx.read(fd, 64)
        yield from ctx.close(fd)
        results["status"] = status
        results["data"] = data
        results["finished_ms"] = ctx.sim.now / 1e6

    hive.spawn_init(0, consumer, name="quickstart")
    sim.run(until=2_000_000_000)  # drive the simulation 2 s

    print(f"producer exit status : {results['status']}")
    print(f"file contents        : {results['data'].decode()}")
    print(f"simulated time       : {results['finished_ms']:.2f} ms")
    c0 = hive.cell(0)
    print(f"cell 0 remote opens  : "
          f"{c0.metrics.counter('opens.remote').value}")
    print(f"cell 0 RPCs issued   : {c0.rpc.metrics.counter('calls').value}")

    # ------------------------------------------------------------------
    # 3. The paper's headline microbenchmarks, in three lines each.
    # ------------------------------------------------------------------
    print("\nmicrobenchmarks (paper value in parentheses):")
    fault = measure_page_fault(boot_two_cell(), remote=True, nfaults=64)
    print(f"  remote page fault : {fault['mean_ns']/1e3:.1f} us (50.7)")
    system = boot_two_cell()
    rpc = measure_rpc(system)
    print(f"  null RPC          : {rpc['mean_ns']/1e3:.1f} us (7.2)")
    careful = measure_careful_reference(system)
    print(f"  careful reference : {careful['mean_ns']/1e3:.2f} us (1.16)")


if __name__ == "__main__":
    main()
