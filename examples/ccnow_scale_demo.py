#!/usr/bin/env python3
"""CC-NOW scale demo: sixteen cells, independent failures.

Section 8 of the paper: "Both approaches would create a cache-coherent
network of workstations (CC-NOW).  The goal of a CC-NOW is a system with
the fault isolation and administrative independence characteristic of a
workstation cluster, but the resource sharing characteristic of a
multiprocessor.  Hive is a natural starting point for a CC-NOW operating
system."

This demo boots a 16-node mesh with one cell per node (each node: 1 CPU,
8 MB, a disk), runs an independent compute-server workload on every cell
with cross-cell file sharing, then fail-stops three cells at different
times.  The other thirteen keep computing — the reliability definition in
Section 2: failure probability proportional to the resources a process
actually uses.

Run:  python examples/ccnow_scale_demo.py
"""

from repro.core import boot_hive
from repro.core.invariants import check_system
from repro.hardware.faults import FaultInjector
from repro.hardware.machine import MachineConfig
from repro.hardware.params import HardwareParams
from repro.sim import Simulator
from repro.unix.fs import PAGE

NUM_CELLS = 16


def main() -> None:
    params = HardwareParams(num_nodes=NUM_CELLS,
                            memory_per_node=8 * 1024 * 1024)
    sim = Simulator()
    hive = boot_hive(sim, num_cells=NUM_CELLS,
                     machine_config=MachineConfig(params=params, seed=21,
                                                  hop_sensitive_network=True))
    hive.namespace.mount("/shared", 5)  # one cell serves a shared dir
    print(f"booted {NUM_CELLS} cells on a "
          f"{hive.machine.interconnect.width}x"
          f"{hive.machine.interconnect.width} mesh")

    finished = {}

    def station_workload(cell_id):
        def prog(ctx):
            # Local work plus an occasional shared-directory access.
            for round_ in range(8):
                fd = yield from ctx.open(f"/local{cell_id}/out{round_}",
                                         "w", create=True)
                yield from ctx.write(fd, b"w" * PAGE)
                yield from ctx.close(fd)
                if round_ % 3 == 0:
                    try:
                        fd = yield from ctx.open(
                            f"/shared/board{round_}", "w", create=True)
                        yield from ctx.write(fd, bytes([cell_id]) * 64)
                        yield from ctx.close(fd)
                    except Exception:
                        pass  # the shared server may be gone
                yield from ctx.compute(60_000_000)
            finished[cell_id] = ctx.sim.now
        return prog

    for c in range(NUM_CELLS):
        hive.namespace.mount(f"/local{c}", c)
        hive.spawn_init(c, station_workload(c), name=f"station{c}")

    victims = [2, 9, 14]
    for i, victim in enumerate(victims):
        hive.injector.inject_at((120 + 90 * i) * 1_000_000,
                                FaultInjector.NODE_FAILURE, victim)

    sim.run(until=5_000_000_000)

    survivors = hive.registry.live_cell_ids()
    print(f"\nfail-stopped cells     : {victims}")
    print(f"surviving cells        : {len(survivors)} of {NUM_CELLS}")
    print(f"workloads finished     : "
          f"{sorted(finished)} ({len(finished)} stations)")
    print(f"recovery rounds        : {len(hive.coordinator.records)}")
    for record in hive.coordinator.records:
        print(f"  round {record.round_id}: dead={sorted(record.dead_cells)} "
              f"discarded={record.discarded_pages} pages, "
              f"agreement in {record.agreement_ns/1e6:.1f} ms")
    problems = check_system(hive)
    print(f"invariant violations   : {len(problems)}")
    assert len(finished) == NUM_CELLS - len(victims)
    assert not problems
    print("\nevery surviving station completed its work — fault "
          "isolation of a cluster,\nresource sharing of a multiprocessor.")


if __name__ == "__main__":
    main()
