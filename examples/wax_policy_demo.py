#!/usr/bin/env python3
"""Wax demo: user-level intercell resource policy (Section 3.2).

Boots a Hive with Wax enabled, creates memory pressure on one cell, and
shows Wax's global view steering the page allocator's borrow decisions —
then kills a cell and shows Wax dying with it and restarting as a fresh
incarnation spanning the survivors.

Run:  python examples/wax_policy_demo.py
"""

from repro.core import boot_hive
from repro.hardware.machine import MachineConfig
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    hive = boot_hive(sim, num_cells=4,
                     machine_config=MachineConfig(seed=7),
                     with_wax=True)
    wax = hive.registry.wax
    sim.run(until=300_000_000)  # let Wax build its snapshot

    print("== Wax global view ==")
    for cell_id, state in sorted(wax.snapshot.items()):
        print(f"  cell {cell_id}: free={state['free_frames']} frames, "
              f"load={state['load']} processes")
    print(f"  incarnation {wax.incarnation}, "
          f"{wax.hints_pushed} hints pushed")

    # Create memory pressure on cell 0: eat most of its free frames.
    c0 = hive.cell(0)
    eaten = []
    while c0.pfdats.free_count > 200:
        eaten.append(c0.pfdats.alloc_frame())
    sim.run(until=sim.now + 200_000_000)

    print("\n== after pressuring cell 0 ==")
    print(f"  cell 0 free frames : {c0.pfdats.free_count}")
    for cell_id in (1, 2, 3):
        hint = hive.cell(cell_id).wax_hints.get("borrow_target")
        print(f"  cell {cell_id} borrow hint : cell {hint} "
              f"(should avoid pressured cell 0)")
    for cell_id in (1, 2, 3):
        assert hive.cell(cell_id).wax_hints.get("borrow_target") != 0

    # Hint validation: cells reject nonsense from a damaged Wax.
    print("\n== hint sanity checking ==")
    for bad in ({"borrow_target": 1},      # a cell never borrows from itself
                {"borrow_target": 99},     # no such cell
                {"borrow_target": "junk"}):
        print(f"  cell 1 accepts {bad}? "
              f"{hive.cell(1).validate_wax_hints(bad)}")

    # Kill a cell: Wax's pages are discarded with it; a new incarnation
    # is forked to the survivors by recovery.
    print("\n== cell failure ==")
    first = wax.incarnation
    hive.machine.halt_node(3)
    sim.run(until=sim.now + 1_000_000_000)
    print(f"  survivors          : {hive.registry.live_cell_ids()}")
    print(f"  wax incarnation    : {first} -> {wax.incarnation} "
          f"({wax.restarts} restart[s])")
    sim.run(until=sim.now + 300_000_000)
    print(f"  new snapshot spans : {sorted(wax.snapshot)}")


if __name__ == "__main__":
    main()
